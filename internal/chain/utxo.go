package chain

import (
	"fmt"
	"sync"
	"time"

	"github.com/coconut-bench/coconut/internal/crypto"
)

// StateRef identifies one output state of a Corda-style transaction: the
// producing transaction plus the output index.
type StateRef struct {
	TxID  crypto.Hash
	Index int
}

// String renders the reference for tracing and error messages.
func (r StateRef) String() string {
	return fmt.Sprintf("%s[%d]", r.TxID.Short(), r.Index)
}

// ContractState is the content of a UTXO state in the Corda model. Key/Value
// carry IEL data (a stored key-value pair, an account row); Kind names the
// contract.
type ContractState struct {
	Kind  string
	Key   string
	Value string
	Owner string
}

// UTXOTransaction is a Corda-style transaction: it consumes input state
// references and produces output states. Corda has no blocks (paper §2);
// these transactions finalize individually once notarised and signed by all
// required parties.
type UTXOTransaction struct {
	ID          crypto.Hash
	Client      string
	Seq         uint64
	Op          Operation
	Inputs      []StateRef
	Outputs     []ContractState
	SubmittedAt time.Time
	Signatures  []crypto.Signature
}

// NewUTXOTransaction derives the transaction ID from its content. The
// derivation streams through one pooled hasher (operation digest, then the
// content digest, then the client/seq ID) and allocates nothing.
func NewUTXOTransaction(client string, seq uint64, op Operation, inputs []StateRef, outputs []ContractState) *UTXOTransaction {
	h := crypto.AcquireHasher()
	op.digestInto(h)
	opDigest := h.Sum()
	h.Reset()
	h.WriteHash(opDigest)
	for _, in := range inputs {
		h.WriteHash(in.TxID)
		h.WriteUint64(uint64(in.Index))
	}
	for _, out := range outputs {
		h.WriteString(out.Kind)
		h.WriteString(out.Key)
		h.WriteString(out.Value)
		h.WriteString(out.Owner)
	}
	content := h.Sum()
	h.Reset()
	h.WriteString(client)
	h.WriteUint64(seq)
	h.WriteHash(content)
	id := h.Sum()
	h.Release()
	return &UTXOTransaction{
		ID:      id,
		Client:  client,
		Seq:     seq,
		Op:      op,
		Inputs:  inputs,
		Outputs: outputs,
	}
}

// Ref returns the StateRef for output i of this transaction.
func (tx *UTXOTransaction) Ref(i int) StateRef { return StateRef{TxID: tx.ID, Index: i} }

// DoubleSpendError reports an attempt to consume an already-spent state; the
// Corda notary returns it when SendPayment races on the same input (paper
// §4.1: "a notary might reject already spent transaction output").
type DoubleSpendError struct {
	Ref        StateRef
	ConsumedBy crypto.Hash
}

// Error implements error.
func (e *DoubleSpendError) Error() string {
	return fmt.Sprintf("state %s already consumed by tx %s", e.Ref, e.ConsumedBy.Short())
}

// UnknownStateError reports consumption of a state that was never produced.
type UnknownStateError struct{ Ref StateRef }

// Error implements error.
func (e *UnknownStateError) Error() string {
	return fmt.Sprintf("state %s does not exist", e.Ref)
}

// Vault is a node's UTXO store: the set of unspent states plus the history
// of consumed ones. It is the storage component the paper's Corda
// KeyValue-Get benchmark stresses by forcing linear scans.
type Vault struct {
	mu       sync.RWMutex
	unspent  map[StateRef]ContractState
	consumed map[StateRef]crypto.Hash // ref -> consuming tx
	order    []StateRef               // insertion order, for linear scans
}

// NewVault creates an empty vault.
func NewVault() *Vault {
	return &Vault{
		unspent:  make(map[StateRef]ContractState),
		consumed: make(map[StateRef]crypto.Hash),
	}
}

// Apply atomically consumes the transaction's inputs and records its
// outputs. It fails without side effects on double spends or unknown
// inputs.
func (v *Vault) Apply(tx *UTXOTransaction) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, in := range tx.Inputs {
		if by, ok := v.consumed[in]; ok {
			return &DoubleSpendError{Ref: in, ConsumedBy: by}
		}
		if _, ok := v.unspent[in]; !ok {
			return &UnknownStateError{Ref: in}
		}
	}
	for _, in := range tx.Inputs {
		delete(v.unspent, in)
		v.consumed[in] = tx.ID
	}
	for i, out := range tx.Outputs {
		ref := tx.Ref(i)
		v.unspent[ref] = out
		v.order = append(v.order, ref)
	}
	return nil
}

// Get returns the unspent state at ref.
func (v *Vault) Get(ref StateRef) (ContractState, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	st, ok := v.unspent[ref]
	return st, ok
}

// LinearScan walks every state ever produced, in insertion order, invoking
// fn on the unspent ones until fn returns true (found) or the scan ends.
// It returns the number of states visited. This deliberately models Corda
// OS's query functions, which "require iterating over each KeyValue pair to
// find a specific one" (paper §5.1) — the root cause of its read
// performance collapse.
func (v *Vault) LinearScan(fn func(ref StateRef, st ContractState) bool) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	visited := 0
	for _, ref := range v.order {
		st, ok := v.unspent[ref]
		if !ok {
			continue
		}
		visited++
		if fn(ref, st) {
			return visited
		}
	}
	return visited
}

// FindByKey linear-scans for the first unspent state with the given kind
// and key.
func (v *Vault) FindByKey(kind, key string) (StateRef, ContractState, bool) {
	var (
		foundRef StateRef
		foundSt  ContractState
		found    bool
	)
	v.LinearScan(func(ref StateRef, st ContractState) bool {
		if st.Kind == kind && st.Key == key {
			foundRef, foundSt, found = ref, st, true
			return true
		}
		return false
	})
	return foundRef, foundSt, found
}

// UnspentCount returns the number of live states.
func (v *Vault) UnspentCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.unspent)
}

// ConsumedCount returns the number of spent states.
func (v *Vault) ConsumedCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.consumed)
}
