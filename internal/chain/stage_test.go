package chain

import (
	"sync"
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for s := 0; s < NumStages; s++ {
		got, ok := StageByName(Stage(s).String())
		if !ok || got != Stage(s) {
			t.Fatalf("StageByName(%q) = %v, %v", Stage(s).String(), got, ok)
		}
	}
	if _, ok := StageByName("nonsense"); ok {
		t.Fatal("StageByName accepted an unknown label")
	}
}

func TestStageMarkFirstWriteWins(t *testing.T) {
	var tr StageTrace
	t0 := time.Unix(10, 0)
	tr.Mark(StageQueue, t0)
	tr.Mark(StageQueue, t0.Add(time.Second)) // replay: must not move the mark
	if got := tr.At(StageQueue); got != t0.UnixNano() {
		t.Fatalf("mark moved: %d, want %d", got, t0.UnixNano())
	}
	if tr.At(StageConsensus) != 0 {
		t.Fatal("unset stage must read 0")
	}
	// A mark exactly at the epoch must still read as set.
	var epoch StageTrace
	epoch.Mark(StageSubmit, time.Unix(0, 0))
	if epoch.At(StageSubmit) == 0 {
		t.Fatal("epoch mark read as unset")
	}
}

func TestStageDurationsAttributeIntervals(t *testing.T) {
	// Order-execute shape: submit 1s, queue 2s, consensus 3s, execute 0s
	// (same decide instant), commit closes at the client.
	var tr StageTrace
	base := time.Unix(100, 0)
	tr.Mark(StageSubmit, base.Add(1*time.Second))
	tr.Mark(StageQueue, base.Add(3*time.Second))
	tr.Mark(StageConsensus, base.Add(6*time.Second))
	tr.Mark(StageExecute, base.Add(6*time.Second))
	end := base.Add(8 * time.Second)

	var buf [NumStages]StageSpan
	spans := tr.Durations(base, end, buf[:0])
	want := map[Stage]time.Duration{
		StageSubmit:    1 * time.Second,
		StageQueue:     2 * time.Second,
		StageConsensus: 3 * time.Second,
		StageExecute:   0,
		StageCommit:    2 * time.Second,
	}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v, want %d entries", spans, len(want))
	}
	var total time.Duration
	for _, sp := range spans {
		if d, ok := want[sp.Stage]; !ok || d != sp.Dur {
			t.Fatalf("stage %v = %v, want %v", sp.Stage, sp.Dur, want[sp.Stage])
		}
		total += sp.Dur
	}
	if total != end.Sub(base) {
		t.Fatalf("stage durations sum to %v, want end-to-end %v", total, end.Sub(base))
	}
}

func TestStageDurationsHandleExecuteFirstPipelines(t *testing.T) {
	// Fabric shape: execution (endorsement) completes before the envelope
	// ever queues for ordering. Attribution must follow mark time, not the
	// enum order.
	var tr StageTrace
	base := time.Unix(0, 0)
	tr.Mark(StageExecute, base.Add(1*time.Second)) // endorse
	tr.Mark(StageSubmit, base.Add(2*time.Second))  // orderer ingress admit
	tr.Mark(StageQueue, base.Add(4*time.Second))   // block cut
	tr.Mark(StageConsensus, base.Add(5*time.Second))
	tr.Mark(StageValidate, base.Add(6*time.Second))

	var buf [NumStages]StageSpan
	spans := tr.Durations(base, base.Add(7*time.Second), buf[:0])
	order := make([]Stage, len(spans))
	for i, sp := range spans {
		order[i] = sp.Stage
	}
	wantOrder := []Stage{StageExecute, StageSubmit, StageQueue, StageConsensus, StageValidate, StageCommit}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("span order = %v, want %v", order, wantOrder)
		}
	}
	if spans[0].Dur != time.Second || spans[1].Dur != time.Second {
		t.Fatalf("execute-first intervals wrong: %v", spans)
	}
}

// TestStageMarksMonotonic drives marks from concurrent goroutines (the
// gossip-shared-pointer case) and checks the resolved durations are
// non-negative and sum exactly to the end-to-end window — the invariant the
// per-stage histograms rely on.
func TestStageMarksMonotonic(t *testing.T) {
	var tr StageTrace
	base := time.Unix(50, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine stamps every stage at a slightly different
			// instant; CAS keeps the earliest per stage.
			for s := 0; s < NumStages-1; s++ {
				tr.Mark(Stage(s), base.Add(time.Duration(s+1)*time.Second+time.Duration(g)*time.Millisecond))
			}
		}()
	}
	wg.Wait()
	end := base.Add(10 * time.Second)
	var buf [NumStages]StageSpan
	spans := tr.Durations(base, end, buf[:0])
	var total time.Duration
	for _, sp := range spans {
		if sp.Dur < 0 {
			t.Fatalf("negative duration for %v: %v", sp.Stage, sp.Dur)
		}
		total += sp.Dur
	}
	if total != end.Sub(base) {
		t.Fatalf("durations sum to %v, want %v", total, end.Sub(base))
	}
	// Exactly one writer's stamp must have won each stage (first arrival
	// wins; in driver code the first arrival is the earliest completion).
	for s := 0; s < NumStages-1; s++ {
		got := tr.At(Stage(s))
		lo := base.Add(time.Duration(s+1) * time.Second).UnixNano()
		hi := lo + int64(3*time.Millisecond)
		if got < lo || got > hi {
			t.Fatalf("stage %v mark = %d, want one of the stamped candidates [%d, %d]", Stage(s), got, lo, hi)
		}
	}
}

// BenchmarkStageOverhead proves the per-transaction cost of stage
// instrumentation: marking every stage and resolving the trace into spans
// allocates nothing, so the TxDigest/Broadcast hot paths keep their
// zero-alloc property.
func BenchmarkStageOverhead(b *testing.B) {
	base := time.Unix(0, 1)
	end := base.Add(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr StageTrace
		for s := 0; s < NumStages; s++ {
			tr.Mark(Stage(s), base.Add(time.Duration(s)*time.Millisecond))
		}
		var buf [NumStages]StageSpan
		spans := tr.Durations(base, end, buf[:0])
		if len(spans) != NumStages {
			b.Fatal("span count")
		}
	}
}
