package chain

import (
	"fmt"
	"sync"
	"time"

	"github.com/coconut-bench/coconut/internal/crypto"
)

// Block is the replicated unit of the block-structured systems (all but
// Corda). Blocks are hash-linked through PrevHash.
type Block struct {
	// Number is the height, starting at 0 for genesis.
	Number uint64
	// PrevHash links to the predecessor block.
	PrevHash crypto.Hash
	// Timestamp is the proposer's block-formation time.
	Timestamp time.Time
	// Proposer names the node (orderer, witness, validator) that formed it.
	Proposer string
	// Txs are the member transactions in commit order.
	Txs []*Transaction
	// TxRoot is the Merkle root over transaction IDs.
	TxRoot crypto.Hash
	// Hash is the block's own digest.
	Hash crypto.Hash
}

// NewBlock assembles and seals a block on top of prev (nil for genesis).
func NewBlock(prev *Block, proposer string, ts time.Time, txs []*Transaction) *Block {
	b := &Block{
		Timestamp: ts,
		Proposer:  proposer,
		Txs:       txs,
	}
	if prev != nil {
		b.Number = prev.Number + 1
		b.PrevHash = prev.Hash
	}
	b.Seal()
	return b
}

// Genesis creates the height-0 block for a chain.
func Genesis(networkID string) *Block {
	b := &Block{
		Proposer:  "genesis",
		Timestamp: time.Unix(0, 0).UTC(),
	}
	b.PrevHash = crypto.SumString("genesis:" + networkID)
	b.Seal()
	return b
}

// Seal recomputes TxRoot and Hash from the current content. The whole seal
// runs on one pooled hasher: the Merkle fold reuses a single level buffer
// and the header digest streams field by field, so sealing allocates
// nothing regardless of block size.
func (b *Block) Seal() {
	h := crypto.AcquireHasher()
	for _, tx := range b.Txs {
		h.AppendLeaf(tx.ID)
	}
	b.TxRoot = h.MerkleRoot()
	h.Reset()
	h.WriteUint64(b.Number)
	h.WriteHash(b.PrevHash)
	h.WriteHash(b.TxRoot)
	h.WriteString(b.Proposer)
	h.WriteUint64(uint64(b.Timestamp.UnixNano()))
	b.Hash = h.Sum()
	h.Release()
}

// TxCount returns the number of transactions in the block.
func (b *Block) TxCount() int { return len(b.Txs) }

// OpCount returns the total operations across all member transactions,
// which is the MTPS-relevant count for BitShares-style blocks.
func (b *Block) OpCount() int {
	n := 0
	for _, tx := range b.Txs {
		n += tx.OpCount()
	}
	return n
}

// VerifyLink checks that b correctly extends prev.
func (b *Block) VerifyLink(prev *Block) error {
	if prev == nil {
		if b.Number != 0 {
			return fmt.Errorf("block %d: missing predecessor", b.Number)
		}
		return nil
	}
	if b.Number != prev.Number+1 {
		return fmt.Errorf("block %d: does not follow height %d", b.Number, prev.Number)
	}
	if b.PrevHash != prev.Hash {
		return fmt.Errorf("block %d: prev hash mismatch", b.Number)
	}
	return nil
}

// Ledger is a node's append-only, hash-linked block store. It enforces
// integrity on every append and supports lookup by height and by
// transaction ID.
type Ledger struct {
	mu      sync.RWMutex
	blocks  []*Block
	txIndex map[crypto.Hash]uint64 // tx ID -> block number
}

// NewLedger creates a ledger seeded with the genesis block for networkID.
func NewLedger(networkID string) *Ledger {
	l := &Ledger{txIndex: make(map[crypto.Hash]uint64)}
	l.blocks = append(l.blocks, Genesis(networkID))
	return l
}

// Append validates and appends a block.
func (l *Ledger) Append(b *Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	head := l.blocks[len(l.blocks)-1]
	if err := b.VerifyLink(head); err != nil {
		return err
	}
	l.blocks = append(l.blocks, b)
	for _, tx := range b.Txs {
		l.txIndex[tx.ID] = b.Number
	}
	return nil
}

// Head returns the latest block.
func (l *Ledger) Head() *Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.blocks[len(l.blocks)-1]
}

// Height returns the head block number.
func (l *Ledger) Height() uint64 { return l.Head().Number }

// BlockAt returns the block at the given height.
func (l *Ledger) BlockAt(n uint64) (*Block, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n >= uint64(len(l.blocks)) {
		return nil, false
	}
	return l.blocks[n], true
}

// FindTx reports the block height containing a transaction.
func (l *Ledger) FindTx(id crypto.Hash) (uint64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n, ok := l.txIndex[id]
	return n, ok
}

// TxCount returns the total committed transactions (excluding genesis).
func (l *Ledger) TxCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, b := range l.blocks {
		n += len(b.Txs)
	}
	return n
}

// Verify walks the whole chain and validates every link.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := 1; i < len(l.blocks); i++ {
		if err := l.blocks[i].VerifyLink(l.blocks[i-1]); err != nil {
			return err
		}
	}
	return nil
}

// Blocks returns a snapshot copy of the chain.
func (l *Ledger) Blocks() []*Block {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]*Block, len(l.blocks))
	copy(out, l.blocks)
	return out
}
