package chain

import (
	"fmt"
	"testing"
	"time"
)

func benchTxs(n int) []*Transaction {
	txs := make([]*Transaction, n)
	for i := range txs {
		txs[i] = NewSingleOp("bench", uint64(i), "keyvalue", "Set", fmt.Sprintf("k%d", i), "v")
	}
	return txs
}

// BenchmarkTxDigest measures recomputing a transaction's content digest
// (operation digests + Merkle fold + ID derivation), the hash work every
// Verify and every driver admission path repeats per transaction.
func BenchmarkTxDigest(b *testing.B) {
	tx := NewSingleOp("bench", 1, "keyvalue", "Set", "key", "value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tx.computeID() != tx.ID {
			b.Fatal("digest mismatch")
		}
	}
}

func BenchmarkTransactionID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewSingleOp("bench", uint64(i), "keyvalue", "Set", "key", "value")
	}
}

func BenchmarkBlockSeal(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		txs := benchTxs(size)
		g := Genesis("bench")
		b.Run(fmt.Sprintf("txs=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = NewBlock(g, "p", time.Unix(0, 0), txs)
			}
		})
	}
}

func BenchmarkLedgerAppend(b *testing.B) {
	txs := benchTxs(100)
	b.ReportAllocs()
	b.ResetTimer()
	l := NewLedger("bench")
	for i := 0; i < b.N; i++ {
		blk := NewBlock(l.Head(), "p", time.Unix(0, 0), txs)
		if err := l.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVaultApply(b *testing.B) {
	b.ReportAllocs()
	v := NewVault()
	for i := 0; i < b.N; i++ {
		tx := NewUTXOTransaction("bench", uint64(i),
			Operation{IEL: "keyvalue", Function: "Set"},
			nil,
			[]ContractState{{Kind: "kv", Key: fmt.Sprintf("k%d", i), Value: "v"}},
		)
		if err := v.Apply(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVaultLinearScan(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		v := NewVault()
		for i := 0; i < size; i++ {
			tx := NewUTXOTransaction("bench", uint64(i),
				Operation{IEL: "keyvalue", Function: "Set"},
				nil,
				[]ContractState{{Kind: "kv", Key: fmt.Sprintf("k%d", i), Value: "v"}},
			)
			if err := v.Apply(tx); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("states=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Worst case: the key is the last state, full scan.
				if _, _, ok := v.FindByKey("kv", fmt.Sprintf("k%d", size-1)); !ok {
					b.Fatal("key not found")
				}
			}
		})
	}
}
