package chain

import (
	"sync/atomic"
	"time"
)

// Stage names one segment of the common transaction pipeline every system
// implements in some order: client submit → mempool/queue wait →
// consensus/ordering → execution → validation → commit broadcast. A stage
// mark records when that segment *completed* for a transaction, so the
// interval between consecutive marks is the time spent in the later stage.
//
// Systems traverse the stages in different orders (Fabric executes at
// endorsement, before the transaction ever queues for ordering; the
// order-execute systems queue first), so stage durations are derived by
// sorting the marks a transaction actually collected, not by assuming a
// fixed order.
type Stage int

// Pipeline stages. StageCommit has no driver-side mark: the commit
// broadcast segment ends when the client's finalization notification
// arrives, which only the client can observe.
const (
	// StageSubmit ends when the transaction is admitted into the system
	// (entry-node mempool/queue accept). Its duration is the client-to-node
	// submission cost.
	StageSubmit Stage = iota
	// StageQueue ends when the transaction leaves the mempool/queue — it was
	// cut into a batch, pulled into a proposal, or picked up by a flow
	// worker. Its duration is the queue wait.
	StageQueue
	// StageConsensus ends when the ordering decision containing the
	// transaction is reached (Raft/IBFT/PBFT/DiemBFT decide, DPoS slot
	// production, Corda notarisation).
	StageConsensus
	// StageExecute ends when transaction execution completes (Fabric
	// endorsement, order-execute apply, Corda flow build).
	StageExecute
	// StageValidate ends when commit-time validation completes (Fabric MVCC
	// check, Corda vault apply). Order-execute systems have no separate
	// validation and leave it unset.
	StageValidate
	// StageCommit ends when the client receives the finalization
	// notification ("persisted on all nodes", §4.5). Marked client-side.
	StageCommit
	// NumStages is the number of pipeline stages.
	NumStages = int(StageCommit) + 1
)

// String returns the stage's report label.
func (s Stage) String() string {
	switch s {
	case StageSubmit:
		return "submit"
	case StageQueue:
		return "queue"
	case StageConsensus:
		return "consensus"
	case StageExecute:
		return "execute"
	case StageValidate:
		return "validate"
	case StageCommit:
		return "commit"
	default:
		return "stage?"
	}
}

// StageByName maps a report label back to its Stage; ok is false for an
// unknown label.
func StageByName(name string) (Stage, bool) {
	for s := 0; s < NumStages; s++ {
		if Stage(s).String() == name {
			return Stage(s), true
		}
	}
	return 0, false
}

// StageTrace carries a transaction's per-stage completion timestamps. It is
// embedded by value in Transaction so the hot path allocates nothing extra;
// drivers stamp stages with Mark as the transaction moves through their
// pipeline. Marks are first-write-wins (atomic CAS), which makes them
// race-safe when several validators process the same *Transaction
// concurrently (Quorum gossip shares the pointer) and idempotent under
// NodeGate backlog replay — the earliest completion is the one that counts.
type StageTrace struct {
	marks [NumStages]atomic.Int64
}

// Mark records stage s as completed at the given instant if it has no mark
// yet. The zero UnixNano is displaced by one nanosecond so a mark exactly at
// the epoch is not mistaken for "unset"; virtual clocks count from an
// arbitrary base, so no real observation is affected.
func (t *StageTrace) Mark(s Stage, at time.Time) {
	ns := at.UnixNano()
	if ns == 0 {
		ns = 1
	}
	t.marks[s].CompareAndSwap(0, ns)
}

// At returns the stage's completion time in UnixNano, or 0 when unset.
func (t *StageTrace) At(s Stage) int64 { return t.marks[s].Load() }

// StageSpan is one resolved pipeline segment: the stage and the time spent
// in it.
type StageSpan struct {
	Stage Stage
	Dur   time.Duration
}

// Durations resolves the trace into per-stage durations. start is the
// client's send instant (T0) and end the client's confirmation instant
// (T3); end also closes the StageCommit segment, which has no driver-side
// mark. The set marks are sorted by (time, stage index) and each interval
// is attributed to the stage whose mark ends it, so pipelines that traverse
// stages in different orders (Fabric executes before queueing) resolve
// without per-system logic. The spans buffer is filled and returned
// (callers pass a stack array slice to keep this allocation-free); unset
// stages are omitted. Negative intervals (a mark before start, from clock
// skew) clamp to zero.
func (t *StageTrace) Durations(start, end time.Time, spans []StageSpan) []StageSpan {
	type mark struct {
		ns int64
		s  Stage
	}
	var set [NumStages]mark
	n := 0
	for s := 0; s < NumStages; s++ {
		if ns := t.marks[s].Load(); ns != 0 {
			m := mark{ns: ns, s: Stage(s)}
			// Insertion sort on a fixed array: NumStages is tiny and this
			// keeps the resolution allocation-free on the event hot path.
			i := n
			for i > 0 && (set[i-1].ns > m.ns || (set[i-1].ns == m.ns && set[i-1].s > m.s)) {
				set[i] = set[i-1]
				i--
			}
			set[i] = m
			n++
		}
	}
	spans = spans[:0]
	prev := start.UnixNano()
	for i := 0; i < n; i++ {
		if set[i].s == StageCommit {
			continue // commit closes at end below
		}
		d := time.Duration(set[i].ns - prev)
		if d < 0 {
			d = 0
		}
		spans = append(spans, StageSpan{Stage: set[i].s, Dur: d})
		prev = set[i].ns
	}
	d := time.Duration(end.UnixNano() - prev)
	if d < 0 {
		d = 0
	}
	spans = append(spans, StageSpan{Stage: StageCommit, Dur: d})
	return spans
}
