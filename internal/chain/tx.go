// Package chain defines the data structures shared by all seven simulated
// systems: transactions (including multi-operation transactions and atomic
// batches), hash-linked blocks, the append-only ledger, and UTXO primitives
// for the Corda-style systems.
package chain

import (
	"fmt"
	"strings"
	"time"

	"github.com/coconut-bench/coconut/internal/crypto"
)

// Operation is a single state change. BitShares packs many operations into
// one transaction (paper §2, Table 2); the other systems carry exactly one.
type Operation struct {
	// IEL names the interface execution layer ("donothing", "keyvalue",
	// "bankingapp").
	IEL string
	// Function is the IEL function to invoke (e.g. "Set", "SendPayment").
	Function string
	// Args are the function arguments.
	Args []string
}

// String renders the operation for tracing.
func (o Operation) String() string {
	return fmt.Sprintf("%s.%s(%s)", o.IEL, o.Function, strings.Join(o.Args, ","))
}

// Digest hashes the operation content.
func (o Operation) Digest() crypto.Hash {
	h := crypto.AcquireHasher()
	o.digestInto(h)
	d := h.Sum()
	h.Release()
	return d
}

// digestInto streams the operation content into an in-progress digest. The
// byte stream matches the historical Sum([]byte(IEL), []byte(Function),
// args...) concatenation, so derived IDs are stable across the refactor.
func (o Operation) digestInto(h *crypto.Hasher) {
	h.WriteString(o.IEL)
	h.WriteString(o.Function)
	for _, a := range o.Args {
		h.WriteString(a)
	}
}

// TxStatus is the lifecycle state of a transaction as seen by a node.
type TxStatus int

// Transaction lifecycle states.
const (
	TxPending TxStatus = iota + 1
	TxCommitted
	TxRejected
)

// String implements fmt.Stringer.
func (s TxStatus) String() string {
	switch s {
	case TxPending:
		return "pending"
	case TxCommitted:
		return "committed"
	case TxRejected:
		return "rejected"
	default:
		return fmt.Sprintf("TxStatus(%d)", int(s))
	}
}

// Transaction is the unit submitted by COCONUT clients. Depending on the
// system it carries one operation (Fabric, Quorum, Diem, Corda), several
// operations (BitShares), or is grouped into a Batch (Sawtooth).
type Transaction struct {
	// ID uniquely identifies the transaction.
	ID crypto.Hash
	// Client is the submitting COCONUT client endpoint name.
	Client string
	// Seq is the client-local sequence number.
	Seq uint64
	// Ops are the operations; len(Ops) >= 1.
	Ops []Operation
	// SubmittedAt is stamped by the client just before sending (the paper's
	// starttime, T0 in Figure 2).
	SubmittedAt time.Time
	// Signatures collected over the transaction digest.
	Signatures []crypto.Signature
	// Stages carries the per-stage pipeline completion timestamps stamped by
	// the driver as the transaction travels submit → queue → consensus →
	// execute → validate. Embedded by value so marking allocates nothing;
	// transactions must be passed by pointer (the atomics make the struct
	// non-copyable, which go vet enforces).
	Stages StageTrace
}

// NewTransaction builds a transaction with a derived ID.
func NewTransaction(client string, seq uint64, ops ...Operation) *Transaction {
	tx := &Transaction{Client: client, Seq: seq, Ops: ops}
	tx.ID = tx.computeID()
	return tx
}

// NewSingleOp is shorthand for the common one-operation transaction.
func NewSingleOp(client string, seq uint64, iel, fn string, args ...string) *Transaction {
	return NewTransaction(client, seq, Operation{IEL: iel, Function: fn, Args: args})
}

func (tx *Transaction) computeID() crypto.Hash {
	h := crypto.AcquireHasher()
	for _, op := range tx.Ops {
		h.Reset()
		op.digestInto(h)
		h.AppendLeaf(h.Sum())
	}
	root := h.MerkleRoot()
	h.Reset()
	h.WriteString(tx.Client)
	h.WriteUint64(tx.Seq)
	h.WriteHash(root)
	id := h.Sum()
	h.Release()
	return id
}

// Digest returns the signable content hash.
func (tx *Transaction) Digest() crypto.Hash { return tx.ID }

// OpCount returns the number of operations the transaction carries. The
// paper counts each BitShares operation as one transaction for MTPS
// purposes (§4.5), so throughput accounting uses this value.
func (tx *Transaction) OpCount() int { return len(tx.Ops) }

// Verify checks structural validity: a non-zero ID matching the content and
// at least one operation.
func (tx *Transaction) Verify() error {
	if len(tx.Ops) == 0 {
		return fmt.Errorf("tx %s: no operations", tx.ID.Short())
	}
	if tx.ID != tx.computeID() {
		return fmt.Errorf("tx %s: id does not match content", tx.ID.Short())
	}
	return nil
}

// Batch is Sawtooth's atomic submission unit: several transactions that
// commit or fail together (paper §2). A failure of any member discards the
// whole batch.
type Batch struct {
	ID  crypto.Hash
	Txs []*Transaction
}

// NewBatch groups transactions into an atomic batch.
func NewBatch(txs ...*Transaction) *Batch {
	h := crypto.AcquireHasher()
	for _, tx := range txs {
		h.AppendLeaf(tx.ID)
	}
	id := h.MerkleRoot()
	h.Release()
	return &Batch{ID: id, Txs: txs}
}

// Size returns the number of member transactions.
func (b *Batch) Size() int { return len(b.Txs) }
