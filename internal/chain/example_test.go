package chain_test

import (
	"fmt"
	"time"

	"github.com/coconut-bench/coconut/internal/chain"
)

// ExampleLedger builds a small hash-linked chain and verifies it.
func ExampleLedger() {
	ledger := chain.NewLedger("example-network")

	tx := chain.NewSingleOp("client-1", 1, "keyvalue", "Set", "greeting", "hello")
	block := chain.NewBlock(ledger.Head(), "orderer-0", time.Unix(0, 0), []*chain.Transaction{tx})
	if err := ledger.Append(block); err != nil {
		fmt.Println("append:", err)
		return
	}

	fmt.Println("height:", ledger.Height())
	fmt.Println("verified:", ledger.Verify() == nil)
	_, found := ledger.FindTx(tx.ID)
	fmt.Println("tx indexed:", found)
	// Output:
	// height: 1
	// verified: true
	// tx indexed: true
}

// ExampleVault walks the Corda-style UTXO lifecycle: issue a state, spend
// it, and observe the double-spend rejection.
func ExampleVault() {
	vault := chain.NewVault()

	issue := chain.NewUTXOTransaction("client-1", 1,
		chain.Operation{IEL: "bankingapp", Function: "CreateAccount", Args: []string{"alice"}},
		nil,
		[]chain.ContractState{{Kind: "account", Key: "alice", Value: "100"}},
	)
	if err := vault.Apply(issue); err != nil {
		fmt.Println("issue:", err)
		return
	}

	spend := chain.NewUTXOTransaction("client-1", 2,
		chain.Operation{IEL: "bankingapp", Function: "SendPayment", Args: []string{"alice", "bob", "100"}},
		[]chain.StateRef{issue.Ref(0)},
		[]chain.ContractState{{Kind: "account", Key: "bob", Value: "100"}},
	)
	fmt.Println("spend ok:", vault.Apply(spend) == nil)

	double := chain.NewUTXOTransaction("client-1", 3,
		chain.Operation{IEL: "bankingapp", Function: "SendPayment", Args: []string{"alice", "carol", "100"}},
		[]chain.StateRef{issue.Ref(0)},
		nil,
	)
	fmt.Println("double spend rejected:", vault.Apply(double) != nil)
	// Output:
	// spend ok: true
	// double spend rejected: true
}
