package chain

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/coconut-bench/coconut/internal/crypto"
)

func TestNewTransactionID(t *testing.T) {
	tx1 := NewSingleOp("client-1", 1, "keyvalue", "Set", "k", "v")
	tx2 := NewSingleOp("client-1", 1, "keyvalue", "Set", "k", "v")
	if tx1.ID != tx2.ID {
		t.Fatal("identical content must yield identical IDs")
	}
	tx3 := NewSingleOp("client-1", 2, "keyvalue", "Set", "k", "v")
	if tx1.ID == tx3.ID {
		t.Fatal("different seq must yield different IDs")
	}
}

func TestTransactionVerify(t *testing.T) {
	tx := NewSingleOp("c", 1, "donothing", "DoNothing")
	if err := tx.Verify(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
	tx.Ops[0].Args = []string{"tampered"}
	if err := tx.Verify(); err == nil {
		t.Fatal("tampered tx accepted")
	}
	empty := &Transaction{ID: crypto.SumString("x")}
	if err := empty.Verify(); err == nil {
		t.Fatal("tx without operations accepted")
	}
}

func TestTransactionOpCount(t *testing.T) {
	ops := make([]Operation, 50)
	for i := range ops {
		ops[i] = Operation{IEL: "donothing", Function: "DoNothing"}
	}
	tx := NewTransaction("c", 1, ops...)
	if tx.OpCount() != 50 {
		t.Fatalf("OpCount = %d, want 50", tx.OpCount())
	}
}

func TestOperationString(t *testing.T) {
	op := Operation{IEL: "keyvalue", Function: "Set", Args: []string{"k", "v"}}
	if got := op.String(); got != "keyvalue.Set(k,v)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTxStatusString(t *testing.T) {
	cases := map[TxStatus]string{
		TxPending:    "pending",
		TxCommitted:  "committed",
		TxRejected:   "rejected",
		TxStatus(99): "TxStatus(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestBatch(t *testing.T) {
	txs := []*Transaction{
		NewSingleOp("c", 1, "donothing", "DoNothing"),
		NewSingleOp("c", 2, "donothing", "DoNothing"),
	}
	b := NewBatch(txs...)
	if b.Size() != 2 {
		t.Fatalf("Size = %d, want 2", b.Size())
	}
	b2 := NewBatch(txs...)
	if b.ID != b2.ID {
		t.Fatal("same members must yield same batch ID")
	}
}

func TestGenesisDiffersPerNetwork(t *testing.T) {
	a := Genesis("net-a")
	b := Genesis("net-b")
	if a.Hash == b.Hash {
		t.Fatal("genesis hash must depend on network ID")
	}
	if a.Number != 0 {
		t.Fatalf("genesis number = %d, want 0", a.Number)
	}
}

func TestBlockLinking(t *testing.T) {
	g := Genesis("net")
	txs := []*Transaction{NewSingleOp("c", 1, "donothing", "DoNothing")}
	b1 := NewBlock(g, "orderer-1", time.Now(), txs)
	if err := b1.VerifyLink(g); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if b1.Number != 1 {
		t.Fatalf("number = %d, want 1", b1.Number)
	}
	b2 := NewBlock(b1, "orderer-1", time.Now(), nil)
	if err := b2.VerifyLink(g); err == nil {
		t.Fatal("skipped-height link accepted")
	}
	bad := NewBlock(g, "orderer-2", time.Now(), nil)
	bad.PrevHash = crypto.SumString("wrong")
	bad.Seal()
	if err := bad.VerifyLink(g); err == nil {
		t.Fatal("wrong prev hash accepted")
	}
}

func TestBlockOpCount(t *testing.T) {
	multi := NewTransaction("c", 1,
		Operation{IEL: "donothing", Function: "DoNothing"},
		Operation{IEL: "donothing", Function: "DoNothing"},
	)
	single := NewSingleOp("c", 2, "donothing", "DoNothing")
	b := NewBlock(Genesis("n"), "w", time.Now(), []*Transaction{multi, single})
	if got := b.OpCount(); got != 3 {
		t.Fatalf("OpCount = %d, want 3", got)
	}
	if got := b.TxCount(); got != 2 {
		t.Fatalf("TxCount = %d, want 2", got)
	}
}

func TestLedgerAppendAndLookup(t *testing.T) {
	l := NewLedger("net")
	tx := NewSingleOp("c", 1, "keyvalue", "Set", "k", "v")
	b := NewBlock(l.Head(), "orderer", time.Now(), []*Transaction{tx})
	if err := l.Append(b); err != nil {
		t.Fatal(err)
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
	if n, ok := l.FindTx(tx.ID); !ok || n != 1 {
		t.Fatalf("FindTx = (%d,%v), want (1,true)", n, ok)
	}
	if _, ok := l.FindTx(crypto.SumString("missing")); ok {
		t.Fatal("found nonexistent tx")
	}
	got, ok := l.BlockAt(1)
	if !ok || got.Hash != b.Hash {
		t.Fatal("BlockAt(1) mismatch")
	}
	if _, ok := l.BlockAt(99); ok {
		t.Fatal("BlockAt beyond head succeeded")
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if l.TxCount() != 1 {
		t.Fatalf("TxCount = %d, want 1", l.TxCount())
	}
}

func TestLedgerRejectsBadLink(t *testing.T) {
	l := NewLedger("net")
	other := NewLedger("other")
	b := NewBlock(other.Head(), "x", time.Now(), nil)
	if err := l.Append(b); err == nil {
		t.Fatal("foreign block accepted")
	}
}

func TestLedgerBlocksSnapshot(t *testing.T) {
	l := NewLedger("net")
	blocks := l.Blocks()
	if len(blocks) != 1 {
		t.Fatalf("len = %d, want 1 (genesis)", len(blocks))
	}
	blocks[0] = nil // must not corrupt the ledger
	if l.Head() == nil {
		t.Fatal("snapshot mutation leaked into ledger")
	}
}

func TestVaultApplyAndDoubleSpend(t *testing.T) {
	v := NewVault()
	issue := NewUTXOTransaction("c", 1,
		Operation{IEL: "bankingapp", Function: "CreateAccount", Args: []string{"acc-0"}},
		nil,
		[]ContractState{{Kind: "account", Key: "acc-0", Value: "100", Owner: "c"}},
	)
	if err := v.Apply(issue); err != nil {
		t.Fatal(err)
	}
	if v.UnspentCount() != 1 {
		t.Fatalf("unspent = %d, want 1", v.UnspentCount())
	}

	spend := NewUTXOTransaction("c", 2,
		Operation{IEL: "bankingapp", Function: "SendPayment", Args: []string{"acc-0", "acc-1"}},
		[]StateRef{issue.Ref(0)},
		[]ContractState{{Kind: "account", Key: "acc-1", Value: "100", Owner: "c"}},
	)
	if err := v.Apply(spend); err != nil {
		t.Fatal(err)
	}
	if v.ConsumedCount() != 1 {
		t.Fatalf("consumed = %d, want 1", v.ConsumedCount())
	}

	double := NewUTXOTransaction("c", 3,
		Operation{IEL: "bankingapp", Function: "SendPayment", Args: []string{"acc-0", "acc-2"}},
		[]StateRef{issue.Ref(0)},
		nil,
	)
	err := v.Apply(double)
	var dse *DoubleSpendError
	if !errors.As(err, &dse) {
		t.Fatalf("err = %v, want DoubleSpendError", err)
	}
	if dse.ConsumedBy != spend.ID {
		t.Fatal("DoubleSpendError does not name the consuming tx")
	}
}

func TestVaultUnknownState(t *testing.T) {
	v := NewVault()
	tx := NewUTXOTransaction("c", 1,
		Operation{IEL: "x", Function: "y"},
		[]StateRef{{TxID: crypto.SumString("ghost"), Index: 0}},
		nil,
	)
	err := v.Apply(tx)
	var use *UnknownStateError
	if !errors.As(err, &use) {
		t.Fatalf("err = %v, want UnknownStateError", err)
	}
}

func TestVaultApplyAtomicOnFailure(t *testing.T) {
	v := NewVault()
	issue := NewUTXOTransaction("c", 1, Operation{IEL: "x", Function: "y"},
		nil, []ContractState{{Kind: "k", Key: "a"}})
	if err := v.Apply(issue); err != nil {
		t.Fatal(err)
	}
	// One valid input plus one unknown input: nothing may be consumed.
	bad := NewUTXOTransaction("c", 2, Operation{IEL: "x", Function: "y"},
		[]StateRef{issue.Ref(0), {TxID: crypto.SumString("ghost"), Index: 0}},
		nil,
	)
	if err := v.Apply(bad); err == nil {
		t.Fatal("partially-invalid tx accepted")
	}
	if v.UnspentCount() != 1 {
		t.Fatal("failed Apply consumed states (not atomic)")
	}
}

func TestVaultLinearScanVisitsInOrder(t *testing.T) {
	v := NewVault()
	for i := 0; i < 10; i++ {
		tx := NewUTXOTransaction("c", uint64(i+1),
			Operation{IEL: "keyvalue", Function: "Set"},
			nil,
			[]ContractState{{Kind: "kv", Key: string(rune('a' + i)), Value: "v"}},
		)
		if err := v.Apply(tx); err != nil {
			t.Fatal(err)
		}
	}
	// Finding the last key must visit all 10 states (the paper's Corda read
	// pathology).
	_, _, found := v.FindByKey("kv", "j")
	if !found {
		t.Fatal("key j not found")
	}
	visited := v.LinearScan(func(_ StateRef, st ContractState) bool {
		return st.Key == "j"
	})
	if visited != 10 {
		t.Fatalf("visited = %d, want 10 (full scan)", visited)
	}
	visited = v.LinearScan(func(_ StateRef, st ContractState) bool {
		return st.Key == "a"
	})
	if visited != 1 {
		t.Fatalf("visited = %d, want 1 (early exit)", visited)
	}
}

func TestVaultFindByKeyMissing(t *testing.T) {
	v := NewVault()
	if _, _, found := v.FindByKey("kv", "missing"); found {
		t.Fatal("found a key in an empty vault")
	}
}

func TestVaultGet(t *testing.T) {
	v := NewVault()
	tx := NewUTXOTransaction("c", 1, Operation{IEL: "kv", Function: "Set"},
		nil, []ContractState{{Kind: "kv", Key: "k", Value: "v"}})
	if err := v.Apply(tx); err != nil {
		t.Fatal(err)
	}
	st, ok := v.Get(tx.Ref(0))
	if !ok || st.Value != "v" {
		t.Fatalf("Get = (%+v, %v)", st, ok)
	}
	if _, ok := v.Get(StateRef{TxID: crypto.SumString("no"), Index: 0}); ok {
		t.Fatal("Get returned a missing state")
	}
}

// Property: a chain built by repeated NewBlock always verifies.
func TestPropertyChainAlwaysVerifies(t *testing.T) {
	f := func(n uint8) bool {
		l := NewLedger("prop")
		for i := 0; i < int(n%32); i++ {
			tx := NewSingleOp("c", uint64(i), "donothing", "DoNothing")
			b := NewBlock(l.Head(), "p", time.Now(), []*Transaction{tx})
			if err := l.Append(b); err != nil {
				return false
			}
		}
		return l.Verify() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: vault unspent+consumed counts are conserved across applies.
func TestPropertyVaultConservation(t *testing.T) {
	f := func(spends []bool) bool {
		v := NewVault()
		var refs []StateRef
		seq := uint64(0)
		for i, spend := range spends {
			seq++
			if spend && len(refs) > 0 {
				in := refs[0]
				refs = refs[1:]
				tx := NewUTXOTransaction("c", seq, Operation{IEL: "x", Function: "s"},
					[]StateRef{in}, []ContractState{{Kind: "k", Key: string(rune(i))}})
				if err := v.Apply(tx); err != nil {
					return false
				}
				refs = append(refs, tx.Ref(0))
			} else {
				tx := NewUTXOTransaction("c", seq, Operation{IEL: "x", Function: "i"},
					nil, []ContractState{{Kind: "k", Key: string(rune(i))}})
				if err := v.Apply(tx); err != nil {
					return false
				}
				refs = append(refs, tx.Ref(0))
			}
		}
		return v.UnspentCount() == len(refs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
