// Package crypto provides the cryptographic primitives the simulated
// blockchain systems share: SHA-256 hash chaining for blocks and
// transactions, and ed25519 identities for node and client signatures.
//
// Identities are generated deterministically from a seed string so that test
// clusters are reproducible across runs.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Hash is a 32-byte SHA-256 digest.
type Hash [32]byte

// ZeroHash is the all-zero digest used as the predecessor of genesis blocks.
var ZeroHash Hash

// Sum hashes the concatenation of the given byte slices. New code on hot
// paths should prefer a pooled Hasher, which also avoids the variadic
// slice and per-part conversions at the call site.
func Sum(parts ...[]byte) Hash {
	h := AcquireHasher()
	for _, p := range parts {
		h.h.Write(p)
	}
	d := h.Sum()
	h.Release()
	return d
}

// SumString hashes a single string without converting it to a []byte.
func SumString(s string) Hash {
	h := AcquireHasher()
	h.WriteString(s)
	d := h.Sum()
	h.Release()
	return d
}

// String returns the hex encoding of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns the digest as a slice.
func (h Hash) Bytes() []byte { return h[:] }

// Combine hashes two hashes together, used for Merkle-style accumulation.
func Combine(a, b Hash) Hash {
	h := AcquireHasher()
	d := h.combine(a, b)
	h.Release()
	return d
}

// MerkleRoot computes a binary Merkle root over the given leaf hashes.
// An empty leaf set yields ZeroHash; odd levels duplicate the last node,
// matching the convention used by most chain implementations. The input is
// not modified; the fold happens in a pooled level buffer, so steady-state
// calls do not allocate.
func MerkleRoot(leaves []Hash) Hash {
	h := AcquireHasher()
	h.leaves = append(h.leaves[:0], leaves...)
	d := h.MerkleRoot()
	h.Release()
	return d
}

// Identity is a signing identity for a node or client.
type Identity struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity derives a deterministic identity from a name. The seed is the
// SHA-256 of the name, so the same name always yields the same key pair.
func NewIdentity(name string) *Identity {
	seed := sha256.Sum256([]byte("coconut-identity:" + name))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Identity{
		Name: name,
		pub:  priv.Public().(ed25519.PublicKey),
		priv: priv,
	}
}

// Public returns the public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Sign signs the message with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// Verify checks a signature produced by Sign against this identity's key.
func (id *Identity) Verify(msg, sig []byte) bool { return ed25519.Verify(id.pub, msg, sig) }

// VerifyWith checks a signature against an arbitrary public key.
func VerifyWith(pub ed25519.PublicKey, msg, sig []byte) bool {
	return ed25519.Verify(pub, msg, sig)
}

// Signature couples a signer name with signature bytes, as carried inside
// transactions and consensus votes.
type Signature struct {
	Signer string
	Bytes  []byte
}

// MultiSign collects signatures from several identities over one message.
func MultiSign(msg []byte, ids ...*Identity) []Signature {
	sigs := make([]Signature, 0, len(ids))
	for _, id := range ids {
		sigs = append(sigs, Signature{Signer: id.Name, Bytes: id.Sign(msg)})
	}
	return sigs
}

// Uint64Bytes encodes a uint64 big-endian, a helper for hashing integers.
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// TxID derives a transaction identifier from a client name, a sequence
// number, and an arbitrary payload digest. Allocation-free.
func TxID(client string, seq uint64, payload []byte) Hash {
	h := AcquireHasher()
	h.WriteString(client)
	h.WriteUint64(seq)
	h.h.Write(payload)
	d := h.Sum()
	h.Release()
	return d
}

// FormatID renders a hash as "name-xxxxxxxx" for readable tracing.
func FormatID(prefix string, h Hash) string {
	return fmt.Sprintf("%s-%s", prefix, h.Short())
}
