package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"), []byte("world"))
	b := Sum([]byte("hello"), []byte("world"))
	if a != b {
		t.Fatal("same input must hash to same digest")
	}
	c := Sum([]byte("helloworld"))
	if a != c {
		t.Fatal("Sum must behave as concatenation")
	}
}

func TestSumDistinct(t *testing.T) {
	if Sum([]byte("a")) == Sum([]byte("b")) {
		t.Fatal("different inputs collided")
	}
}

func TestHashStringRoundtrip(t *testing.T) {
	h := SumString("x")
	if len(h.String()) != 64 {
		t.Fatalf("hex length = %d, want 64", len(h.String()))
	}
	if len(h.Short()) != 8 {
		t.Fatalf("short length = %d, want 8", len(h.Short()))
	}
}

func TestZeroHash(t *testing.T) {
	if !ZeroHash.IsZero() {
		t.Fatal("ZeroHash.IsZero() = false")
	}
	if SumString("x").IsZero() {
		t.Fatal("nonzero hash reported zero")
	}
}

func TestMerkleRootEmpty(t *testing.T) {
	if got := MerkleRoot(nil); !got.IsZero() {
		t.Fatalf("MerkleRoot(nil) = %v, want zero", got)
	}
}

func TestMerkleRootSingle(t *testing.T) {
	leaf := SumString("tx")
	if got := MerkleRoot([]Hash{leaf}); got != leaf {
		t.Fatalf("single-leaf root = %v, want the leaf %v", got, leaf)
	}
}

func TestMerkleRootOrderSensitive(t *testing.T) {
	a, b := SumString("a"), SumString("b")
	if MerkleRoot([]Hash{a, b}) == MerkleRoot([]Hash{b, a}) {
		t.Fatal("merkle root must depend on leaf order")
	}
}

func TestMerkleRootOddLeaves(t *testing.T) {
	leaves := []Hash{SumString("1"), SumString("2"), SumString("3")}
	root := MerkleRoot(leaves)
	// Duplicating the last leaf is the convention: 3 leaves == [1,2,3,3].
	want := Combine(Combine(leaves[0], leaves[1]), Combine(leaves[2], leaves[2]))
	if root != want {
		t.Fatalf("odd-leaf root = %v, want %v", root, want)
	}
}

func TestIdentityDeterministic(t *testing.T) {
	a := NewIdentity("node-1")
	b := NewIdentity("node-1")
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("same name must derive same key")
	}
	c := NewIdentity("node-2")
	if bytes.Equal(a.Public(), c.Public()) {
		t.Fatal("different names derived same key")
	}
}

func TestSignVerify(t *testing.T) {
	id := NewIdentity("signer")
	msg := []byte("block payload")
	sig := id.Sign(msg)
	if !id.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if id.Verify([]byte("tampered"), sig) {
		t.Fatal("signature verified against wrong message")
	}
	other := NewIdentity("other")
	if VerifyWith(other.Public(), msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestMultiSign(t *testing.T) {
	ids := []*Identity{NewIdentity("a"), NewIdentity("b"), NewIdentity("c")}
	msg := []byte("tx")
	sigs := MultiSign(msg, ids...)
	if len(sigs) != 3 {
		t.Fatalf("len(sigs) = %d, want 3", len(sigs))
	}
	for i, s := range sigs {
		if s.Signer != ids[i].Name {
			t.Fatalf("sig %d signer = %q, want %q", i, s.Signer, ids[i].Name)
		}
		if !ids[i].Verify(msg, s.Bytes) {
			t.Fatalf("sig %d does not verify", i)
		}
	}
}

func TestTxIDDistinguishesSeq(t *testing.T) {
	if TxID("c", 1, []byte("p")) == TxID("c", 2, []byte("p")) {
		t.Fatal("tx ids with different sequence numbers collided")
	}
	if TxID("c1", 1, []byte("p")) == TxID("c2", 1, []byte("p")) {
		t.Fatal("tx ids with different clients collided")
	}
}

func TestFormatID(t *testing.T) {
	h := SumString("x")
	got := FormatID("tx", h)
	want := "tx-" + h.Short()
	if got != want {
		t.Fatalf("FormatID = %q, want %q", got, want)
	}
}

// Property: signing is always verifiable for arbitrary messages.
func TestPropertySignAlwaysVerifies(t *testing.T) {
	id := NewIdentity("prop")
	f := func(msg []byte) bool {
		return id.Verify(msg, id.Sign(msg))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MerkleRoot is deterministic for arbitrary leaf sets.
func TestPropertyMerkleDeterministic(t *testing.T) {
	f := func(data [][]byte) bool {
		leaves := make([]Hash, len(data))
		for i, d := range data {
			leaves[i] = Sum(d)
		}
		return MerkleRoot(leaves) == MerkleRoot(leaves)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Uint64Bytes is injective on sampled values.
func TestPropertyUint64BytesInjective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return bytes.Equal(Uint64Bytes(a), Uint64Bytes(b))
		}
		return !bytes.Equal(Uint64Bytes(a), Uint64Bytes(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
