package crypto

import (
	"crypto/sha256"
	"hash"
	"sync"
)

// Hasher is a reusable SHA-256 digest builder for the hot hashing paths
// (transaction IDs, block seals, Merkle folds). It keeps one SHA-256 state,
// one byte scratch buffer, and one Merkle level buffer alive across uses so
// that steady-state hashing performs zero heap allocations, replacing the
// variadic Sum([][]byte) pattern that allocated a slice header per part and
// a fresh digest per call.
//
// A Hasher is not safe for concurrent use; acquire one per goroutine from
// the pool with AcquireHasher and return it with Release. Acquiring is safe
// to nest (e.g. Operation.Digest inside Transaction ID derivation simply
// draws a second pooled instance).
//
// Streaming writes (Write*/Sum) and leaf accumulation (AppendLeaf/
// MerkleRoot) use independent buffers, but MerkleRoot folds leaves through
// the shared SHA-256 state: fold leaves either before starting a streaming
// digest or after finishing one, never in between.
type Hasher struct {
	h       hash.Hash
	scratch []byte
	out     []byte
	leaves  []Hash
}

var hasherPool = sync.Pool{
	New: func() any {
		return &Hasher{
			h:       sha256.New(),
			scratch: make([]byte, 0, 256),
			out:     make([]byte, 0, sha256.Size),
		}
	},
}

// AcquireHasher returns a reset Hasher from the shared pool.
func AcquireHasher() *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.h.Reset()
	h.leaves = h.leaves[:0]
	return h
}

// Release returns the Hasher to the pool. The caller must not use it again.
func (h *Hasher) Release() { hasherPool.Put(h) }

// Reset clears the streaming digest state (leaves are unaffected).
func (h *Hasher) Reset() { h.h.Reset() }

// Write implements io.Writer, feeding raw bytes into the digest. It never
// returns an error.
func (h *Hasher) Write(p []byte) (int, error) { return h.h.Write(p) }

// WriteString feeds a string into the digest without a []byte conversion
// allocation (the bytes are staged through the reusable scratch buffer).
func (h *Hasher) WriteString(s string) {
	h.scratch = append(h.scratch[:0], s...)
	h.h.Write(h.scratch)
}

// WriteUint64 feeds a big-endian uint64, byte-compatible with Uint64Bytes.
func (h *Hasher) WriteUint64(v uint64) {
	h.scratch = append(h.scratch[:0],
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	h.h.Write(h.scratch)
}

// WriteHash feeds a 32-byte digest.
func (h *Hasher) WriteHash(x Hash) {
	h.scratch = append(h.scratch[:0], x[:]...)
	h.h.Write(h.scratch)
}

// Sum finalizes the streaming digest and returns it. The internal state is
// left finalized; call Reset before reusing the streaming interface.
func (h *Hasher) Sum() Hash {
	h.out = h.h.Sum(h.out[:0])
	var d Hash
	copy(d[:], h.out)
	return d
}

// AppendLeaf adds one leaf to the pending Merkle fold.
func (h *Hasher) AppendLeaf(x Hash) { h.leaves = append(h.leaves, x) }

// LeafCount reports the number of accumulated leaves.
func (h *Hasher) LeafCount() int { return len(h.leaves) }

// MerkleRoot folds the accumulated leaves in place into a binary Merkle
// root and clears the leaf buffer. Semantics match the package-level
// MerkleRoot: zero leaves yield ZeroHash, odd levels duplicate their last
// node. The streaming digest state is reset as a side effect.
func (h *Hasher) MerkleRoot() Hash {
	n := len(h.leaves)
	if n == 0 {
		return ZeroHash
	}
	for n > 1 {
		if n%2 == 1 {
			h.leaves = append(h.leaves[:n], h.leaves[n-1])
			n++
		}
		for i := 0; i < n; i += 2 {
			h.leaves[i/2] = h.combine(h.leaves[i], h.leaves[i+1])
		}
		n /= 2
	}
	root := h.leaves[0]
	h.leaves = h.leaves[:0]
	return root
}

// combine hashes two digests together through the shared SHA-256 state.
func (h *Hasher) combine(a, b Hash) Hash {
	h.h.Reset()
	h.scratch = append(append(h.scratch[:0], a[:]...), b[:]...)
	h.h.Write(h.scratch)
	return h.Sum()
}
