package crypto

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// refSum is the reference implementation the pooled Hasher must match.
func refSum(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// refMerkle is the pre-Hasher recursive fold, kept as the golden model.
func refMerkle(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return ZeroHash
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := make([]Hash, 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			next = append(next, refSum(level[i][:], level[i+1][:]))
		}
		level = next
	}
	return level[0]
}

func TestHasherStreamingMatchesSum(t *testing.T) {
	h := AcquireHasher()
	defer h.Release()
	h.WriteString("client-7")
	h.WriteUint64(42)
	h.Write([]byte{1, 2, 3})
	h.WriteHash(SumString("payload"))
	got := h.Sum()

	p := SumString("payload")
	want := refSum([]byte("client-7"), Uint64Bytes(42), []byte{1, 2, 3}, p[:])
	if got != want {
		t.Fatalf("streamed digest %s != reference %s", got, want)
	}
}

func TestHasherSumMatchesPackageSum(t *testing.T) {
	if Sum([]byte("a"), []byte("bc")) != refSum([]byte("a"), []byte("bc")) {
		t.Fatal("Sum diverged from reference")
	}
	if SumString("hello") != refSum([]byte("hello")) {
		t.Fatal("SumString diverged from reference")
	}
	a, b := SumString("a"), SumString("b")
	if Combine(a, b) != refSum(a[:], b[:]) {
		t.Fatal("Combine diverged from reference")
	}
	if TxID("cl", 9, []byte("pp")) != refSum([]byte("cl"), Uint64Bytes(9), []byte("pp")) {
		t.Fatal("TxID diverged from reference")
	}
}

func TestHasherMerkleRootMatchesReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 17, 100} {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = SumString(fmt.Sprintf("leaf-%d", i))
		}
		want := refMerkle(leaves)
		if got := MerkleRoot(leaves); got != want {
			t.Fatalf("n=%d: MerkleRoot = %s, want %s", n, got, want)
		}
		h := AcquireHasher()
		for _, l := range leaves {
			h.AppendLeaf(l)
		}
		if got := h.MerkleRoot(); got != want {
			t.Fatalf("n=%d: Hasher.MerkleRoot = %s, want %s", n, got, want)
		}
		if h.LeafCount() != 0 {
			t.Fatalf("n=%d: leaves not cleared after fold", n)
		}
		h.Release()
	}
}

func TestMerkleRootDoesNotMutateInput(t *testing.T) {
	leaves := make([]Hash, 5)
	for i := range leaves {
		leaves[i] = SumString(fmt.Sprintf("l%d", i))
	}
	snapshot := make([]Hash, len(leaves))
	copy(snapshot, leaves)
	_ = MerkleRoot(leaves)
	for i := range leaves {
		if leaves[i] != snapshot[i] {
			t.Fatalf("leaf %d mutated by MerkleRoot", i)
		}
	}
}

func TestHasherReuseAfterRelease(t *testing.T) {
	// Exercising acquire/release cycles must keep digests stable even when
	// the pool hands back a previously used instance.
	want := SumString("stable")
	for i := 0; i < 100; i++ {
		h := AcquireHasher()
		h.AppendLeaf(ZeroHash) // leave leaf garbage behind on purpose
		h.WriteString("stable")
		if got := h.Sum(); got != want {
			t.Fatalf("iteration %d: digest drifted: %s != %s", i, got, want)
		}
		h.Release()
	}
}

func TestHasherHotPathsDoNotAllocate(t *testing.T) {
	leaves := make([]Hash, 64)
	for i := range leaves {
		leaves[i] = SumString(fmt.Sprintf("leaf-%d", i))
	}
	payload := []byte("p")
	// Warm the pool so steady state is measured.
	_ = MerkleRoot(leaves)
	_ = TxID("client", 1, payload)

	if n := testing.AllocsPerRun(200, func() { _ = TxID("client", 1, payload) }); n > 0 {
		t.Fatalf("TxID allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = SumString("some-string-payload") }); n > 0 {
		t.Fatalf("SumString allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { _ = MerkleRoot(leaves) }); n > 0 {
		t.Fatalf("MerkleRoot allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		h := AcquireHasher()
		h.WriteString("abc")
		h.WriteUint64(77)
		h.WriteHash(ZeroHash)
		_ = h.Sum()
		h.Release()
	}); n > 0 {
		t.Fatalf("streamed digest allocates %v times per op, want 0", n)
	}
}

func BenchmarkSumString(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SumString("a-typical-endpoint-or-key-name")
	}
}

func BenchmarkTxIDDerive(b *testing.B) {
	payload := []byte("payload-digest-bytes-aaaaaaaaaaa")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = TxID("client-3", uint64(i), payload)
	}
}

func BenchmarkMerkleRoot(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		leaves := make([]Hash, n)
		for i := range leaves {
			leaves[i] = SumString(fmt.Sprintf("leaf-%d", i))
		}
		b.Run(fmt.Sprintf("leaves=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = MerkleRoot(leaves)
			}
		})
	}
}
