// Package coconutbench hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation section (§5), plus ablation
// benches for the design choices called out in DESIGN.md.
//
// Each Benchmark* function executes the corresponding experiment once per
// b.N iteration (macro-benchmarks: an iteration is a full COCONUT run) and
// reports MTPS/MFLS as custom metrics. The benches run a shortened sending
// window (150 paper-seconds at scale 1/100); `cmd/coconut-sweep` runs the
// full 300-second, 3-repetition grids and writes EXPERIMENTS.md-style
// reports.
package coconutbench

import (
	"context"
	"strconv"
	"testing"
	"time"

	"github.com/coconut-bench/coconut/internal/chain"
	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/consensus/notary"
	"github.com/coconut-bench/coconut/internal/crypto"
	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/iel"
	"github.com/coconut-bench/coconut/internal/mempool"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/corda"
	"github.com/coconut-bench/coconut/internal/systems/fabric"
	"github.com/coconut-bench/coconut/internal/systems/quorum"
)

// benchOptions is the shared scaled configuration for all benches.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:        0.01,
		SendSeconds:  150,
		GraceSeconds: 30,
		Repetitions:  1,
		Seed:         42,
	}
}

// reportCell publishes a cell's metrics on the bench.
func reportCell(b *testing.B, res coconut.Result, paperMTPS float64) {
	b.Helper()
	b.ReportMetric(res.MTPS.Mean, "MTPS")
	b.ReportMetric(paperMTPS, "paperMTPS")
	b.ReportMetric(res.Received.Mean, "receivedNoT")
	b.ReportMetric(res.Expected.Mean, "expectedNoT")
}

// runCellBench runs one (system, benchmark) cell b.N times.
func runCellBench(b *testing.B, system string, bench coconut.BenchmarkName) {
	b.Helper()
	cell, ok := experiments.BestCell(system, bench)
	if !ok {
		b.Fatalf("no Figure 3 cell for %s/%s", system, bench)
	}
	var last coconut.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCell(system, bench, cell.Params, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportCell(b, last, cell.MTPS)
}

// --- Figure 3: best MTPS heat map (7 systems x 6 benchmarks) ---

func BenchmarkFigure3(b *testing.B) {
	for _, system := range experiments.AllSystems {
		system := system
		b.Run(sanitize(system), func(b *testing.B) {
			for _, bench := range coconut.AllBenchmarks {
				bench := bench
				b.Run(string(bench), func(b *testing.B) {
					runCellBench(b, system, bench)
				})
			}
		})
	}
}

// --- Figure 4: the same grid under emulated network latency ---

func BenchmarkFigure4(b *testing.B) {
	for _, system := range experiments.AllSystems {
		system := system
		b.Run(sanitize(system), func(b *testing.B) {
			for _, bench := range coconut.AllBenchmarks {
				bench := bench
				b.Run(string(bench), func(b *testing.B) {
					cell, _ := experiments.BestCell(system, bench)
					opts := benchOptions()
					opts.Netem = true
					var last coconut.Result
					for i := 0; i < b.N; i++ {
						res, err := experiments.RunCell(system, bench, cell.Params, opts)
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					reportCell(b, last, experiments.Figure4MTPS[system][bench])
				})
			}
		})
	}
}

// --- Figure 5: scalability (DoNothing at 4/8/16/32 nodes) ---

func BenchmarkFigure5(b *testing.B) {
	for _, system := range experiments.AllSystems {
		system := system
		cell, _ := experiments.BestCell(system, coconut.BenchDoNothing)
		for _, nodes := range experiments.Figure5Nodes {
			nodes := nodes
			b.Run(sanitize(system)+"/nodes="+strconv.Itoa(nodes), func(b *testing.B) {
				opts := benchOptions()
				opts.Nodes = nodes
				var last coconut.Result
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunCell(system, coconut.BenchDoNothing, cell.Params, opts)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.MTPS.Mean, "MTPS")
			})
		}
	}
}

// --- Tables 7-20 ---

func runTableBench(b *testing.B, id string) {
	b.Helper()
	tbl, ok := experiments.TableByID(id)
	if !ok {
		b.Fatalf("unknown table %s", id)
	}
	for ri, row := range tbl.Rows {
		row := row
		b.Run("row"+strconv.Itoa(ri), func(b *testing.B) {
			var last coconut.Result
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunCell(tbl.System, tbl.Benchmark, row.Params, benchOptions())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCell(b, last, row.PaperMTPS)
		})
	}
}

func BenchmarkTableCordaOS(b *testing.B)         { runTableBench(b, "7+8") }
func BenchmarkTableCordaEnterprise(b *testing.B) { runTableBench(b, "9+10") }
func BenchmarkTableBitShares(b *testing.B)       { runTableBench(b, "11+12") }
func BenchmarkTableFabric(b *testing.B)          { runTableBench(b, "13+14") }
func BenchmarkTableQuorum(b *testing.B)          { runTableBench(b, "15+16") }
func BenchmarkTableSawtooth(b *testing.B)        { runTableBench(b, "17+18") }
func BenchmarkTableDiem(b *testing.B)            { runTableBench(b, "19+20") }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationAdmission contrasts the two admission disciplines:
// bounded-reject (Sawtooth) vs unbounded-stall (Quorum livelock).
func BenchmarkAblationAdmission(b *testing.B) {
	b.Run("bounded-reject", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := mempool.NewBounded[int](64)
			rejected := 0
			for j := 0; j < 10000; j++ {
				if err := pool.Add(j); err != nil {
					rejected++
					pool.Take(16)
				}
			}
			b.ReportMetric(float64(rejected), "rejected")
		}
	})
	b.Run("unbounded-stall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := mempool.NewUnbounded[int]()
			for j := 0; j < 10000; j++ {
				_ = pool.Add(j)
			}
			b.ReportMetric(float64(pool.Len()), "backlog")
		}
	})
}

// BenchmarkAblationBatching compares single-op transactions, multi-op
// transactions (BitShares) and atomic batches (Sawtooth) on throughput per
// payload at the data-structure level.
func BenchmarkAblationBatching(b *testing.B) {
	const payloads = 1000
	b.Run("single-op-txs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < payloads; j++ {
				tx := chain.NewSingleOp("c", uint64(j), iel.DoNothingName, iel.FnDoNothing)
				_ = tx.Verify()
			}
		}
	})
	b.Run("multi-op-tx-100", func(b *testing.B) {
		ops := make([]chain.Operation, 100)
		for i := range ops {
			ops[i] = chain.Operation{IEL: iel.DoNothingName, Function: iel.FnDoNothing}
		}
		for i := 0; i < b.N; i++ {
			for j := 0; j < payloads/100; j++ {
				tx := chain.NewTransaction("c", uint64(j), ops...)
				_ = tx.Verify()
			}
		}
	})
	b.Run("batch-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < payloads/100; j++ {
				txs := make([]*chain.Transaction, 100)
				for k := range txs {
					txs[k] = chain.NewSingleOp("c", uint64(j*100+k), iel.DoNothingName, iel.FnDoNothing)
				}
				_ = chain.NewBatch(txs...)
			}
		}
	})
}

// BenchmarkAblationSigning measures serial (Corda OS) vs parallel (Corda
// Enterprise) signature collection latency across 4..32 parties.
func BenchmarkAblationSigning(b *testing.B) {
	delay := 500 * time.Microsecond
	sign := func(party string, _ crypto.Hash) (crypto.Signature, error) {
		time.Sleep(delay)
		return crypto.Signature{Signer: party}, nil
	}
	for _, parties := range []int{4, 8, 16, 32} {
		names := make([]string, parties)
		for i := range names {
			names[i] = "node-" + strconv.Itoa(i)
		}
		b.Run("serial/"+strconv.Itoa(parties), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := notary.CollectSignatures(clock.New(), notary.Serial, names, crypto.SumString("tx"), sign); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("parallel/"+strconv.Itoa(parties), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := notary.CollectSignatures(clock.New(), notary.Parallel, names, crypto.SumString("tx"), sign); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConsensus runs the same DoNothing load through every
// consensus family at an equal block budget, isolating the ordering layer's
// contribution to throughput.
func BenchmarkAblationConsensus(b *testing.B) {
	opts := benchOptions()
	opts.SendSeconds = 100
	cells := map[string]experiments.Params{
		systems.NameFabric:    {RL: 800, MM: 500},  // Raft
		systems.NameQuorum:    {RL: 800, BP: 5},    // IBFT
		systems.NameBitShares: {RL: 800, BI: 1},    // DPoS
		systems.NameSawtooth:  {RL: 800, PD: 1},    // PBFT
		systems.NameDiem:      {RL: 800, BS: 2000}, // DiemBFT
	}
	for system, params := range cells {
		system, params := system, params
		b.Run(sanitize(system), func(b *testing.B) {
			var last coconut.Result
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunCell(system, coconut.BenchDoNothing, params, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MTPS.Mean, "MTPS")
		})
	}
}

// BenchmarkAblationEndToEnd quantifies the paper's central methodological
// claim: node-side measurement (count commits on the first node) overstates
// what clients actually confirm end to end (all nodes + notification).
func BenchmarkAblationEndToEnd(b *testing.B) {
	run := func(b *testing.B, newDriver func(clk clock.Clock) systems.Driver) (nodeSide, endToEnd float64) {
		b.Helper()
		res, err := coconut.Run(coconut.RunConfig{
			SystemName:      "ablation",
			NewDriver:       newDriver,
			Unit:            []coconut.BenchmarkName{coconut.BenchDoNothing},
			Clients:         2,
			RateLimit:       200,
			WorkloadThreads: 4,
			SendDuration:    500 * time.Millisecond,
			ListenGrace:     200 * time.Millisecond,
			Repetitions:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res[0].Expected.Mean, res[0].Received.Mean
	}
	b.Run("fabric", func(b *testing.B) {
		var sent, confirmed float64
		for i := 0; i < b.N; i++ {
			sent, confirmed = run(b, func(clk clock.Clock) systems.Driver {
				return fabric.New(fabric.Config{MaxMessageCount: 20, BatchTimeout: 20 * time.Millisecond})
			})
		}
		b.ReportMetric(sent, "submitted")
		b.ReportMetric(confirmed, "confirmedEndToEnd")
	})
	b.Run("quorum", func(b *testing.B) {
		var sent, confirmed float64
		for i := 0; i < b.N; i++ {
			sent, confirmed = run(b, func(clk clock.Clock) systems.Driver {
				return quorum.New(quorum.Config{BlockPeriod: 20 * time.Millisecond})
			})
		}
		b.ReportMetric(sent, "submitted")
		b.ReportMetric(confirmed, "confirmedEndToEnd")
	})
}

// BenchmarkContentionMacro runs the contention workload plane end to end:
// the Zipfian-skewed SmallBank family and the hotspot YCSB-A mix against
// the systems whose conflict modes differ most (Fabric's MVCC validation
// vs. Quorum's order-execute semantic aborts), reporting goodput and abort
// rate alongside raw MTPS. CI records these in BENCH_4.json so the
// goodput-vs-throughput gap is tracked across PRs like the MTPS trajectory.
func BenchmarkContentionMacro(b *testing.B) {
	opts := benchOptions()
	opts.SendSeconds = 100
	cells := []struct {
		system, mix, skew string
	}{
		{systems.NameFabric, "smallbank", "zipfian"},
		{systems.NameQuorum, "smallbank", "zipfian"},
		{systems.NameFabric, "ycsb-a", "hotspot"},
	}
	for _, cell := range cells {
		cell := cell
		b.Run(sanitize(cell.system)+"/"+cell.mix+"/"+cell.skew, func(b *testing.B) {
			sc := experiments.NewContentionScenario([]string{cell.mix}, []string{cell.skew}, 0)
			sc.Systems = []string{cell.system}
			var last coconut.Result
			for i := 0; i < b.N; i++ {
				outcome, err := experiments.Run(context.Background(), sc, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = outcome.Rows[0].Result
			}
			b.ReportMetric(last.MTPS.Mean, "MTPS")
			b.ReportMetric(last.Goodput.Mean, "goodput")
			b.ReportMetric(100*last.AbortRate.Mean, "abortPct")
			b.ReportMetric(last.Received.Mean, "receivedNoT")
		})
	}
}

// BenchmarkScenarioChaosMacro runs the composed contention-under-chaos
// scenario (skewed SmallBank across a partition-heal) on the two systems
// whose recovery modes differ most, reporting the goodput-recovery metric
// so the BENCH_N.json trajectory tracks it alongside MTPS and abort rates.
func BenchmarkScenarioChaosMacro(b *testing.B) {
	opts := benchOptions()
	opts.SendSeconds = 100
	for _, system := range []string{systems.NameFabric, systems.NameQuorum} {
		system := system
		b.Run(sanitize(system), func(b *testing.B) {
			sc, err := experiments.ScenarioByName("contention-under-chaos")
			if err != nil {
				b.Fatal(err)
			}
			sc.Systems = []string{system}
			var last coconut.Result
			for i := 0; i < b.N; i++ {
				outcome, err := experiments.Run(context.Background(), sc, opts)
				if err != nil {
					b.Fatal(err)
				}
				last = outcome.Rows[0].Result
			}
			b.ReportMetric(last.MTPS.Mean, "MTPS")
			b.ReportMetric(last.Goodput.Mean, "goodput")
			b.ReportMetric(100*last.AbortRate.Mean, "abortPct")
			b.ReportMetric(100*last.Availability.Mean, "availPct")
			b.ReportMetric(last.RecoverySec.Mean, "recoverySec")
			b.ReportMetric(last.GoodputRecoverySec.Mean, "goodputRecoverySec")
		})
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkAblationOrdering contrasts Fabric's two ordering backends (§5.4):
// Raft (fast, lossy under overload) vs Kafka (per-batch overhead, lossless).
func BenchmarkAblationOrdering(b *testing.B) {
	run := func(b *testing.B, ordering fabric.OrderingService) {
		b.Helper()
		var last coconut.Result
		for i := 0; i < b.N; i++ {
			res, err := coconut.Run(coconut.RunConfig{
				SystemName: "fabric-ablation",
				NewDriver: func(clk clock.Clock) systems.Driver {
					return fabric.New(fabric.Config{
						Ordering:        ordering,
						KafkaOverhead:   5 * time.Millisecond,
						MaxMessageCount: 16,
						BatchTimeout:    20 * time.Millisecond,
					})
				},
				Unit:            []coconut.BenchmarkName{coconut.BenchDoNothing},
				Clients:         2,
				RateLimit:       400,
				WorkloadThreads: 4,
				SendDuration:    time.Second,
				ListenGrace:     400 * time.Millisecond,
				Repetitions:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = res[0]
		}
		b.ReportMetric(last.MTPS.Mean, "MTPS")
		b.ReportMetric(last.Received.Mean, "receivedNoT")
	}
	b.Run("raft", func(b *testing.B) { run(b, fabric.OrderingRaft) })
	b.Run("kafka", func(b *testing.B) { run(b, fabric.OrderingKafka) })
}

// BenchmarkAblationSubsetSigning quantifies the paper's §6 suggestion: Corda
// flows signed by a subset of counterparties instead of the whole network.
func BenchmarkAblationSubsetSigning(b *testing.B) {
	run := func(b *testing.B, required, nodes int) {
		b.Helper()
		var last coconut.Result
		for i := 0; i < b.N; i++ {
			res, err := coconut.Run(coconut.RunConfig{
				SystemName: "corda-ablation",
				NewDriver: func(clk clock.Clock) systems.Driver {
					return corda.NewOS(corda.Config{
						Nodes:           nodes,
						RequiredSigners: required,
						SignProcessing:  5 * time.Millisecond,
						ScanCost:        time.Microsecond,
						FlowTimeout:     10 * time.Second,
					})
				},
				Unit:            []coconut.BenchmarkName{coconut.BenchDoNothing},
				Clients:         2,
				RateLimit:       400,
				WorkloadThreads: 4,
				SendDuration:    time.Second,
				ListenGrace:     400 * time.Millisecond,
				Repetitions:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = res[0]
		}
		b.ReportMetric(last.MTPS.Mean, "MTPS")
	}
	for _, nodes := range []int{4, 8, 16} {
		nodes := nodes
		b.Run("all-sign/nodes="+strconv.Itoa(nodes), func(b *testing.B) { run(b, 0, nodes) })
		b.Run("subset-3/nodes="+strconv.Itoa(nodes), func(b *testing.B) { run(b, 3, nodes) })
	}
}
