// Command benchjson converts `go test -bench` text output into the
// BENCH_N.json format the repo uses to track its performance trajectory
// across PRs. Each positional argument is a label=path pair naming one
// bench run; the output groups the parsed results by label so a single
// file can carry before/after comparisons:
//
//	go test -run '^$' -bench . -benchmem ./internal/network/ > after.txt
//	benchjson -out BENCH_3.json before=seed.txt after=after.txt
//
// Every benchmark line is parsed into its name, iteration count, and the
// full metric map (ns/op, B/op, allocs/op, plus custom b.ReportMetric
// values such as MTPS).
//
// Scenario outcomes join the same trajectory: -outcome label=outcomes.json
// ingests the JSON written by `coconut-sweep -json`, turning every result
// row into one entry whose metrics carry MTPS, goodput, abort rate, and —
// when the fault axis was active — availability and both recovery clocks
// (raw and goodput). WAL-axis rows add replaySec/replayedRecords/logBytes,
// the durable recovery plane's cost model.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH_N.json document.
type Report struct {
	Go     string             `json:"go"`
	Note   string             `json:"note,omitempty"`
	Runs   map[string][]Entry `json:"runs"`
	Labels []string           `json:"labels"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// outcomeArgs collects repeatable -outcome label=path flags.
type outcomeArgs []string

func (o *outcomeArgs) String() string     { return strings.Join(*o, ",") }
func (o *outcomeArgs) Set(v string) error { *o = append(*o, v); return nil }

func run() error {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the report")
	var outcomes outcomeArgs
	flag.Var(&outcomes, "outcome", "label=outcomes.json pair ingesting a `coconut-sweep -json` file (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 && len(outcomes) == 0 {
		return fmt.Errorf("usage: benchjson [-out file] [-outcome label=outcomes.json] label=benchoutput.txt ...")
	}

	rep := Report{Go: runtime.Version(), Runs: map[string][]Entry{}, Note: *note}
	addEntries := func(label string, entries []Entry) {
		rep.Runs[label] = append(rep.Runs[label], entries...)
		if !slices.Contains(rep.Labels, label) {
			rep.Labels = append(rep.Labels, label)
		}
	}
	for _, arg := range flag.Args() {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("argument %q is not label=path", arg)
		}
		entries, err := parseFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		addEntries(label, entries)
	}
	for _, arg := range outcomes {
		label, path, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("-outcome %q is not label=path", arg)
		}
		entries, err := parseOutcomeFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		addEntries(label, entries)
	}
	sort.Strings(rep.Labels)

	if err := checkBenchSequence(*out); err != nil {
		return err
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// benchRe matches the BENCH_N.json trajectory naming scheme.
var benchRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// benchGaps returns the BENCH_N numbers missing between the smallest
// tracked report and n, given the sibling basenames already present next
// to the output file. The trajectory is only useful when contiguous: a
// hole means some PR's report was never generated or was lost, and the
// next writer is the first place the hole becomes visible.
func benchGaps(siblings []string, n int) []int {
	present := map[int]bool{n: true}
	lo := n
	for _, s := range siblings {
		m := benchRe.FindStringSubmatch(s)
		if m == nil {
			continue
		}
		k, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		present[k] = true
		if k < lo {
			lo = k
		}
	}
	var gaps []int
	for i := lo; i < n; i++ {
		if !present[i] {
			gaps = append(gaps, i)
		}
	}
	return gaps
}

// checkBenchSequence fails loudly when writing BENCH_N.json would leave a
// hole in the trajectory directory. Non-BENCH output names are exempt.
func checkBenchSequence(out string) error {
	m := benchRe.FindStringSubmatch(filepath.Base(out))
	if m == nil {
		return nil
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return nil
	}
	glob, err := filepath.Glob(filepath.Join(filepath.Dir(out), "BENCH_*.json"))
	if err != nil {
		return err
	}
	names := make([]string, len(glob))
	for i, g := range glob {
		names[i] = filepath.Base(g)
	}
	if gaps := benchGaps(names, n); len(gaps) > 0 {
		miss := make([]string, len(gaps))
		for i, g := range gaps {
			miss[i] = fmt.Sprintf("BENCH_%d.json", g)
		}
		return fmt.Errorf("writing %s would leave holes in the bench trajectory: missing %s (regenerate the missing reports first, or renumber)",
			filepath.Base(out), strings.Join(miss, ", "))
	}
	return nil
}

// parseOutcomeFile converts a `coconut-sweep -json` outcomes file into
// entries: one per result row, named Scenario/<name>/<system>/<load>, with
// the contention and fault metrics that have no `go test -bench` source.
func parseOutcomeFile(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var outcomes []*experiments.Outcome
	if err := json.Unmarshal(data, &outcomes); err != nil {
		return nil, fmt.Errorf("parse outcomes: %w", err)
	}
	var entries []Entry
	for _, oc := range outcomes {
		scenario := oc.Scenario.Name
		if scenario == "" {
			scenario = "scenario"
		}
		for _, row := range oc.Rows {
			name := "Scenario/" + scenario + "/" + strings.ReplaceAll(row.System, " ", "_") +
				"/" + strings.ReplaceAll(row.Benchmark, " ", "_")
			r := row.Result
			metrics := map[string]float64{
				"MTPS":        r.MTPS.Mean,
				"goodput":     r.Goodput.Mean,
				"abortPct":    100 * r.AbortRate.Mean,
				"receivedNoT": r.Received.Mean,
				"expectedNoT": r.Expected.Mean,
			}
			if r.Availability.N > 0 {
				metrics["availPct"] = 100 * r.Availability.Mean
			}
			if r.RecoverySec.N > 0 {
				metrics["recoverySec"] = r.RecoverySec.Mean
			}
			if r.GoodputRecoverySec.N > 0 {
				metrics["goodputRecoverySec"] = r.GoodputRecoverySec.Mean
			}
			// WAL-axis rows carry the durable recovery plane's clocks: replay
			// time (scales with log length at the crash) and the live log
			// footprint.
			if r.ReplaySec.N > 0 {
				metrics["replaySec"] = r.ReplaySec.Mean
				metrics["replayedRecords"] = r.ReplayedRecords.Mean
			}
			if r.LogBytes.N > 0 {
				metrics["logBytes"] = r.LogBytes.Mean
			}
			// Per-stage pipeline latency percentiles (seconds), one pair per
			// instrumented stage, so trajectory diffs surface a stage that
			// regressed even when the end-to-end MFLS hides it.
			for _, ss := range r.Stages {
				metrics["stage_"+ss.Stage+"_p50"] = ss.P50.Mean
				metrics["stage_"+ss.Stage+"_p95"] = ss.P95.Mean
			}
			// Windowed queue/resource gauges: the p95 and peak of each
			// registry gauge across the run's timeline windows, so a PR that
			// grows a backlog (hub in-flight, mempool depth, un-synced WAL
			// tail) shows up in the trajectory diff even when throughput and
			// latency look unchanged.
			if !r.Series.Empty() {
				for g := 0; g < coconut.NumGauges; g++ {
					metrics[coconut.GaugeNames[g]+"P95"] = r.Series.Quantile(g, 0.95)
					metrics[coconut.GaugeNames[g]+"Max"] = r.Series.Max(g)
				}
			}
			entries = append(entries, Entry{Name: name, Iterations: 1, Metrics: metrics})
		}
		// Virtual-time runs also carry per-cell speed accounting: how many
		// simulated seconds the cell covered per wall-clock second.
		for _, t := range oc.Timings {
			entries = append(entries, Entry{
				Name:       "Scenario/" + scenario + "/virtual-time/" + strings.ReplaceAll(t.Cell, " ", "_"),
				Iterations: 1,
				Metrics: map[string]float64{
					"simSeconds":  t.SimSeconds,
					"wallSeconds": t.WallSeconds,
					"simSpeedup":  t.Speedup,
				},
			})
		}
	}
	return entries, nil
}

// parseFile extracts benchmark result lines from one `go test -bench`
// output file.
func parseFile(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if e, ok := parseBenchLine(line); ok {
			entries = append(entries, e)
		}
	}
	return entries, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   516852   1970 ns/op   71 B/op   1 allocs/op   12.5 MTPS
//
// returning false for non-result Benchmark lines (e.g. FAIL markers).
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Entry{}, false
	}
	return Entry{Name: name, Iterations: iters, Metrics: metrics}, true
}
