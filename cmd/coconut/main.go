// Command coconut runs a single COCONUT benchmark cell against one of the
// seven simulated systems and prints the paper-style result row.
//
// Example:
//
//	coconut -system Fabric -benchmark DoNothing -rl 1600 -mm 1000
//	coconut -system "Corda OS" -benchmark KeyValue-Set -rl 20
//	coconut -system BitShares -benchmark DoNothing -rl 1600 -bi 1 -actions 100 -netem
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coconut:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		system    = flag.String("system", "Fabric", "system under test (Corda OS, Corda Enterprise, BitShares, Fabric, Quorum, Sawtooth, Diem)")
		benchmark = flag.String("benchmark", "DoNothing", "benchmark (DoNothing, KeyValue-Set, KeyValue-Get, BankingApp-CreateAccount, BankingApp-SendPayment, BankingApp-Balance)")
		rl        = flag.Int("rl", 400, "total rate limiter across the four clients (payloads/second)")
		mm        = flag.Int("mm", 0, "Fabric MaxMessageCount")
		bs        = flag.Int("bs", 0, "Diem max_block_size")
		bi        = flag.Int("bi", 0, "BitShares block_interval (paper seconds)")
		bp        = flag.Int("bp", 0, "Quorum istanbul.blockperiod (paper seconds)")
		pd        = flag.Int("pd", 0, "Sawtooth block_publishing_delay (paper seconds)")
		actions   = flag.Int("actions", 0, "operations per transaction (BitShares) or transactions per batch (Sawtooth)")
		nodes     = flag.Int("nodes", 4, "network size")
		netem     = flag.Bool("netem", false, "apply the paper's emulated latency (normal, mu 12ms, sigma 2ms)")
		scale     = flag.Float64("scale", 0.01, "time scale (paper seconds x scale = simulation seconds)")
		sendSec   = flag.Float64("send", 300, "sending window in paper seconds")
		reps      = flag.Int("reps", 1, "repetitions (the paper uses 3)")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		dbPath    = flag.String("db", "", "optional result database path (JSON); results are appended")
	)
	flag.Parse()

	opts := experiments.Options{
		Scale:       *scale,
		SendSeconds: *sendSec,
		Repetitions: *reps,
		Netem:       *netem,
		Nodes:       *nodes,
		Seed:        *seed,
	}
	params := experiments.Params{
		RL: *rl, MM: *mm, BS: *bs, BI: *bi, BP: *bp, PD: *pd, Actions: *actions,
	}

	res, err := experiments.RunCell(*system, coconut.BenchmarkName(*benchmark), params, opts)
	if err != nil {
		return err
	}

	fmt.Println(res.String())
	fmt.Printf("  MTPS  mean=%.2f sd=%.2f sem=%.2f ci95=±%.2f (n=%d)\n",
		res.MTPS.Mean, res.MTPS.SD, res.MTPS.SEM, res.MTPS.CI95, res.MTPS.N)
	fmt.Printf("  MFLS  mean=%.3fs (%.1fs paper time)\n",
		res.MFLS.Mean, opts.PaperSeconds(res.MFLS.Mean))
	fmt.Printf("  NoT   received=%.0f expected=%.0f\n", res.Received.Mean, res.Expected.Mean)

	if *dbPath != "" {
		db, err := coconut.OpenResultDB(*dbPath)
		if err != nil {
			return err
		}
		if err := db.Store(res); err != nil {
			return err
		}
		fmt.Printf("  stored in %s (%d results total)\n", *dbPath, db.Len())
	}
	return nil
}
