// Command coconut-vet is the multichecker driver for the internal/vet
// analyzer suite: the type-aware replacement for the retired
// lint-walltime.sh / lint-directio.sh / lint-telemetry.sh shell lints,
// plus the determinism/safety analyzers grep could not express
// (maporder, actorspawn, parklock, globalrand).
//
// Usage:
//
//	go run ./cmd/coconut-vet ./...            # gate the whole module
//	go run ./cmd/coconut-vet -summary ./...   # per-analyzer counts
//	go run ./cmd/coconut-vet -list            # analyzers + protected invariants
//	go run ./cmd/coconut-vet -dir DIR         # fixture mode: analyze one
//	                                          # directory outside go list
//	                                          # (self-test / testdata trees)
//
// Findings are suppressed by a `//vet:allow <analyzer> <reason>` comment
// on the finding's line or the line above; suppressed findings are
// excluded from failure but counted in -summary, and a stale suppression
// (no matching finding) is itself an error. Exit status is nonzero on
// any unsuppressed finding, stale suppression, or malformed allow
// comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/coconut-bench/coconut/internal/vet"
)

func main() {
	var (
		summary   = flag.Bool("summary", false, "print per-analyzer finding/suppression counts")
		list      = flag.Bool("list", false, "list the analyzers and the invariants they protect")
		dir       = flag.String("dir", "", "fixture mode: analyze one directory of Go files (no package policy)")
		asPath    = flag.String("as", "fixture", "fixture mode: import path the -dir package pretends to have")
		only      = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		nodefault = flag.Bool("nopolicy", false, "disable the default exemption policy (run everything everywhere)")
	)
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.Analyzers
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := vet.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "coconut-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "coconut-vet: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*vet.Package
	policy := vet.DefaultPolicy()
	if *nodefault {
		policy = nil
	}
	if *dir != "" {
		pkg, err := vet.LoadDir(root, *dir, *asPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coconut-vet: %v\n", err)
			os.Exit(2)
		}
		pkgs = []*vet.Package{pkg}
		policy = nil // fixture trees carry no module import path to gate on
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = vet.LoadPatterns(root, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coconut-vet: %v\n", err)
			os.Exit(2)
		}
	}

	res := vet.RunAnalyzers(pkgs, analyzers, policy)

	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", relPos(root, f.Pos.String()), f.Analyzer, f.Message)
	}
	for _, s := range res.Stale {
		fmt.Fprintf(os.Stderr, "%s: stale //vet:allow %s (%s): no matching finding; delete the suppression\n",
			relPos(root, s.Pos.String()), s.Analyzer, s.Reason)
	}
	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "%s\n", e)
	}

	if *summary {
		counts := res.Counts()
		total, suppressed := 0, 0
		for _, a := range analyzers {
			c := counts[a.Name]
			fmt.Printf("%-11s %3d findings  %3d suppressed\n", a.Name, c[0], c[1])
			total += c[0]
			suppressed += c[1]
		}
		fmt.Printf("%-11s %3d findings  %3d suppressed  (%d stale allows, %d errors)\n",
			"total", total, suppressed, len(res.Stale), len(res.Errors))
	}

	if res.Failed() {
		os.Exit(1)
	}
	fmt.Println("coconut-vet: ok")
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// relPos trims the module root from absolute positions for stable,
// readable output.
func relPos(root, pos string) string {
	if strings.HasPrefix(pos, root+string(filepath.Separator)) {
		return pos[len(root)+1:]
	}
	return pos
}
