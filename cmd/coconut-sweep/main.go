// Command coconut-sweep runs experiment scenarios: declarative,
// serializable specs composing system x workload x arrival x faults x
// scale, executed by one engine (experiments.Run) and rendered by one
// report writer. The paper's figures and tables, the chaos presets, and
// the contention grid are all named scenarios in the registry; ad-hoc
// compositions load from JSON files.
//
// Examples:
//
//	coconut-sweep -scenario figure3                 # full 42-cell heat map
//	coconut-sweep -scenario figure4 -system Fabric  # one system's latency column
//	coconut-sweep -scenario table13+14              # Fabric SendPayment rows
//	coconut-sweep -scenario faults-partition-heal   # chaos preset, all systems
//	coconut-sweep -scenario contention-under-chaos  # skewed SmallBank across a partition-heal
//	coconut-sweep -scenario my-experiment.json      # spec from a file
//	coconut-sweep -scenario figure3,table15+16 -md EXPERIMENTS.md  # combined report
//	coconut-sweep -list                             # every scenario and flag value
//
// The pre-scenario flags keep working and map onto registry scenarios:
// -figure 3/4/5, -table ID, -tables, -faults PRESET, and
// -workload/-mix/-skew/-keys produce exactly the scenarios named above.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/faults"
	"github.com/coconut-bench/coconut/internal/trace"
	"github.com/coconut-bench/coconut/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coconut-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenarioArg = flag.String("scenario", "", "comma-separated scenarios to run: registry names (see -list) or JSON spec files")
		jsonPath    = flag.String("json", "", "write the outcomes as JSON to this file (benchjson -outcome ingests it)")
		figure      = flag.Int("figure", 0, "legacy: figure to regenerate (3, 4, or 5); same as -scenario figureN")
		mdPath      = flag.String("md", "", "also write the combined markdown report to this file")
		table       = flag.String("table", "", "legacy: table to regenerate (7+8, ..., 19+20); same as -scenario tableID")
		allTables   = flag.Bool("tables", false, "legacy: regenerate every table")
		system      = flag.String("system", "", "restrict every scenario to one system")
		scale       = flag.Float64("scale", 0.01, "time scale")
		sendSec     = flag.Float64("send", 300, "sending window in paper seconds")
		reps        = flag.Int("reps", 1, "repetitions (the paper uses 3)")
		seed        = flag.Int64("seed", 42, "deterministic seed")
		arrival     = flag.String("arrival", "uniform", "client arrival schedule: uniform, poisson, or burst[:N]")
		timeMode    = flag.String("time", "real", "clock driving every run: real (wall clock) or virtual (auto-advancing simulated clock; CPU-bound, prints per-cell speedups)")
		faultsArg   = flag.String("faults", "", "legacy: chaos preset to run all systems under; same as -scenario faults-PRESET: "+
			strings.Join(faults.PresetNames(), ", "))
		workloadArg = flag.String("workload", "", "legacy: contention workload family to sweep: kv, smallbank, or all")
		mixArg      = flag.String("mix", "", "operation mix for -workload kv (default ycsb-a): "+
			strings.Join(workload.MixNames(), ", ")+", or all")
		skewArg = flag.String("skew", "zipfian", "key distribution for -workload: "+
			strings.Join(workload.DistNames(), ", ")+", or all")
		keysArg    = flag.Int("keys", 0, "shared key-space / account-pool size for -workload (0 = default)")
		tracePath  = flag.String("trace", "", "record sampled per-transaction spans across every cell and write Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) to this file")
		ndjsonPath = flag.String("ndjson", "", "stream each cell's windowed gauge series to this file as NDJSON, one record per timeline window")
		stagesFlag = flag.Bool("stages", false, "print the per-stage pipeline latency breakdown (submit/queue/consensus/execute/validate/commit) and bottleneck per cell")
		list       = flag.Bool("list", false, "enumerate scenarios, benchmarks, arrivals, fault presets, workloads, mixes, and skews")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when the sweep finishes")
	)
	flag.Parse()

	if *list {
		printList()
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
			}
		}()
	}

	if _, err := coconut.ArrivalByName(*arrival); err != nil {
		return err
	}
	if !experiments.ValidTime(*timeMode) {
		return fmt.Errorf("unknown -time %q (want real or virtual)", *timeMode)
	}
	opts := experiments.Options{
		Scale:       *scale,
		SendSeconds: *sendSec,
		Repetitions: *reps,
		Arrival:     *arrival,
		Seed:        *seed,
		Time:        *timeMode,
		Progress:    printProgress,
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New(trace.Options{})
		opts.Trace = tracer
	}
	if *ndjsonPath != "" {
		f, err := os.Create(*ndjsonPath)
		if err != nil {
			return fmt.Errorf("ndjson: %w", err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		inner := opts.Progress
		opts.Progress = func(p experiments.Progress) {
			inner(p)
			if err := streamGauges(enc, p); err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: ndjson:", err)
			}
		}
	}

	scenarios, err := resolveScenarios(*scenarioArg, *figure, *table, *allTables, *faultsArg, *workloadArg, *mixArg, *skewArg, *keysArg)
	if err != nil {
		return err
	}
	if len(scenarios) == 0 {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -scenario (or the legacy -figure/-table/-tables/-faults/-workload flags), or -list")
	}
	if *system != "" {
		// Restrict, never replace: a scenario pinned to other systems (a
		// paper table) is skipped with a notice instead of being run
		// against a system its parameters and references do not describe.
		restricted := scenarios[:0]
		for _, sc := range scenarios {
			keep := false
			for _, s := range sc.Systems {
				if s == *system {
					keep = true
				}
			}
			if len(sc.Systems) == 0 {
				// Default = all systems; validation rejects unknown names.
				keep = true
			}
			if !keep {
				fmt.Fprintf(os.Stderr, "coconut-sweep: skipping %s: it does not include system %q (systems: %s)\n",
					sc.Name, *system, strings.Join(sc.Systems, ", "))
				continue
			}
			sc.Systems = []string{*system}
			restricted = append(restricted, sc)
		}
		scenarios = restricted
		if len(scenarios) == 0 {
			return fmt.Errorf("no requested scenario includes system %q", *system)
		}
	}

	var outcomes []*experiments.Outcome
	for _, sc := range scenarios {
		fmt.Printf("== Scenario %s: %s ==\n", sc.Name, sc.Description)
		oc, err := experiments.Run(context.Background(), sc, opts)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, oc)
		for _, t := range oc.Timings {
			fmt.Printf("  [virtual] %-40s %8.1f sim-s / %6.2f wall-s = %7.1fx\n",
				t.Cell, t.SimSeconds, t.WallSeconds, t.Speedup)
		}
		if sc.PaperRef == "figure3" {
			for _, line := range experiments.ShapeChecks(oc.Rows) {
				fmt.Println("  " + line)
			}
		}
		if *stagesFlag {
			printStages(oc)
		}
	}

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteReport(f, outcomes...); err != nil {
			return err
		}
		if tracer != nil {
			if err := writeExemplarSection(f, tracer, *tracePath); err != nil {
				return err
			}
		}
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := tracer.WriteJSON(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace: %d spans (%d dropped at cap) -> %s\n", tracer.Len(), tracer.Dropped(), *tracePath)
		for _, ex := range tracer.Exemplars() {
			fmt.Printf("  [exemplar] %-4s txid=%s %.4fs\n", ex.Label, ex.TxID, ex.Seconds)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(outcomes, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// printProgress renders engine completion events as sweep progress lines.
func printProgress(p experiments.Progress) {
	if p.Result == nil {
		return
	}
	r := p.Result
	line := fmt.Sprintf("[%d/%d] %-44s MTPS=%8.2f MFLS=%6.2fs recv=%.0f/%.0f",
		p.Index, p.Total, p.Cell, r.MTPS.Mean, r.MFLS.Mean, r.Received.Mean, r.Expected.Mean)
	if r.AbortRate.Mean > 0 || r.Goodput.Mean != r.MTPS.Mean {
		line += fmt.Sprintf(" goodput=%.2f abort=%.1f%%", r.Goodput.Mean, 100*r.AbortRate.Mean)
	}
	if r.Availability.N > 0 {
		line += fmt.Sprintf(" avail=%.0f%%", 100*r.Availability.Mean)
		if r.GoodputRecoverySec.N > 0 {
			line += fmt.Sprintf(" goodput-recovery=%.2fs", r.GoodputRecoverySec.Mean)
		}
	}
	if s := experiments.ConflictSummary(*r, 3); s != "-" {
		line += " conflicts=" + s
	}
	fmt.Println(line)
}

// streamGauges writes one NDJSON record per timeline window of a completed
// cell's gauge series: the cell coordinates plus every registered gauge by
// name. Cells without a series (no timeline, or a driver that does not
// report queue depths) emit nothing.
func streamGauges(enc *json.Encoder, p experiments.Progress) error {
	if p.Result == nil {
		return nil
	}
	for i, smp := range p.Result.Series {
		rec := map[string]any{
			"scenario": p.Scenario,
			"cell":     p.Cell,
			"system":   p.System,
			"window":   i,
		}
		for g := 0; g < coconut.NumGauges; g++ {
			rec[coconut.GaugeNames[g]] = smp[g]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeExemplarSection appends the sampled-trace exemplars to the markdown
// report: the p50/p99/max end-to-end transactions with the txid to search
// for in Perfetto, linked to the trace file the sweep wrote.
func writeExemplarSection(w io.Writer, tr *trace.Tracer, tracePath string) error {
	exemplars := tr.Exemplars()
	if len(exemplars) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "### Trace exemplars\n\nSampled per-transaction spans were recorded to [`%s`](%s) (load in [Perfetto](https://ui.perfetto.dev) or chrome://tracing; search a txid under span args). %d spans retained, %d dropped at the cap.\n\n",
		tracePath, tracePath, tr.Len(), tr.Dropped()); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| Exemplar | TxID | End-to-end |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---:|"); err != nil {
		return err
	}
	for _, ex := range exemplars {
		if _, err := fmt.Fprintf(w, "| %s | `%s` | %.4fs |\n", ex.Label, ex.TxID, ex.Seconds); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// printStages renders each cell's per-stage pipeline latency breakdown and
// names the dominant stage. The markdown report renders the same data as a
// table whenever it is present; this flag surfaces it on stdout.
func printStages(oc *experiments.Outcome) {
	for _, row := range oc.Rows {
		r := row.Result
		if len(r.Stages) == 0 {
			continue
		}
		cell := row.System + "/" + row.Benchmark
		if row.Workload != "" {
			cell = row.System + "/" + row.Workload
		}
		line := fmt.Sprintf("  [stages] %-40s", cell)
		for _, sr := range r.Stages {
			line += fmt.Sprintf(" %s=%.3fs", sr.Stage, sr.Mean.Mean)
		}
		line += " bottleneck=" + r.Bottleneck
		fmt.Println(line)
	}
}

// resolveScenarios maps the -scenario flag plus every legacy flag onto
// scenario specs, preserving the legacy execution order (figures, tables,
// faults, contention).
func resolveScenarios(scenarioArg string, figure int, table string, allTables bool, faultsArg, workloadArg, mixArg, skewArg string, keys int) ([]experiments.Scenario, error) {
	var out []experiments.Scenario

	if scenarioArg != "" {
		for _, name := range strings.Split(scenarioArg, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if strings.HasSuffix(name, ".json") {
				data, err := os.ReadFile(name)
				if err != nil {
					return nil, err
				}
				sc, err := experiments.ParseScenario(data)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", name, err)
				}
				if sc.Name == "" {
					sc.Name = strings.TrimSuffix(name, ".json")
				}
				out = append(out, sc)
				continue
			}
			sc, err := experiments.ScenarioByName(name)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
	}

	switch figure {
	case 0:
	case 3, 4, 5:
		sc, err := experiments.ScenarioByName(fmt.Sprintf("figure%d", figure))
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	default:
		return nil, fmt.Errorf("unknown figure %d (want 3, 4, or 5)", figure)
	}

	if table != "" {
		sc, err := experiments.ScenarioByName("table" + table)
		if err != nil {
			return nil, fmt.Errorf("unknown table %q", table)
		}
		out = append(out, sc)
	}
	if allTables {
		for _, tbl := range experiments.Tables {
			sc, err := experiments.ScenarioByName("table" + tbl.ID)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
	}

	if faultsArg != "" {
		sc, err := experiments.ScenarioByName("faults-" + faultsArg)
		if err != nil {
			return nil, fmt.Errorf("unknown fault preset %q (want one of %s)", faultsArg, strings.Join(faults.PresetNames(), ", "))
		}
		out = append(out, sc)
	}

	if workloadArg != "" {
		mixes, err := contentionMixes(workloadArg, mixArg)
		if err != nil {
			return nil, err
		}
		skews := []string{skewArg}
		if skewArg == "all" {
			skews = []string{"partitioned", "sequential", "zipfian", "hotspot"}
		}
		out = append(out, experiments.NewContentionScenario(mixes, skews, keys))
	} else if mixArg != "" {
		return nil, fmt.Errorf("-mix %q needs -workload", mixArg)
	}

	return out, nil
}

// contentionMixes resolves the -workload/-mix flag pair into mix names. An
// explicit -mix only applies to the kv family; combining it with any other
// family is an error rather than a silently ignored flag.
func contentionMixes(family, mix string) ([]string, error) {
	switch family {
	case "kv":
		switch mix {
		case "":
			return []string{"ycsb-a"}, nil
		case "all":
			return []string{"write", "ycsb-a", "ycsb-b", "ycsb-c"}, nil
		default:
			if _, err := workload.MixByName(mix); err != nil {
				return nil, err
			}
			return []string{mix}, nil
		}
	case "smallbank":
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload smallbank (the family fixes its own mix)", mix)
		}
		return []string{"smallbank"}, nil
	case "all":
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload all (pass -workload kv -mix %s instead)", mix, mix)
		}
		return []string{"write", "ycsb-a", "smallbank"}, nil
	default:
		// Accept a mix name directly (e.g. -workload ycsb-b) for brevity.
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload %q", mix, family)
		}
		if _, err := workload.MixByName(family); err != nil {
			return nil, fmt.Errorf("unknown workload family %q (want kv, smallbank, all, or a mix name)", family)
		}
		return []string{family}, nil
	}
}

// printList enumerates every scenario and flag value that is otherwise
// only discoverable by reading source.
func printList() {
	fmt.Println("scenarios (-scenario, comma-separable; or a .json spec file):")
	byName := make(map[string]experiments.Scenario)
	for _, sc := range experiments.Registry() {
		byName[sc.Name] = sc
	}
	for _, name := range experiments.ScenarioNames() {
		fmt.Printf("  %-26s %s\n", name, byName[name].Description)
	}
	fmt.Println("benchmarks (scenario Benchmarks entries):")
	for _, b := range coconut.AllBenchmarks {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("arrival schedules (-arrival):")
	fmt.Println("  uniform, poisson, burst[:N]")
	fmt.Println("fault presets (scenario Faults.Preset / legacy -faults):")
	for _, p := range faults.PresetNames() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("workload families (legacy -workload): kv, smallbank, all")
	fmt.Println("operation mixes (scenario Workload.Mixes / legacy -mix):")
	for _, m := range workload.MixNames() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("key distributions (scenario Workload.Skews / legacy -skew):")
	for _, d := range workload.DistNames() {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println("systems (-system / scenario Systems entries):")
	for _, s := range experiments.AllSystems {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println("telemetry gauges (sampled per timeline window; -ndjson records, benchjson P95/Max metrics):")
	for _, g := range coconut.GaugeNames {
		fmt.Printf("  %s\n", g)
	}
	fmt.Println("trace sinks (-trace FILE):")
	fmt.Println("  chrome-trace-event JSON: spans for pipeline stages, network hops, consensus rounds, and WAL appends/fsyncs;")
	fmt.Println("  load in Perfetto (ui.perfetto.dev) or chrome://tracing; exemplar txids print after the sweep and join -md reports")
}
