// Command coconut-sweep regenerates the paper's figures and tables: the
// Figure 3 best-MTPS heat map, the Figure 4 latency-impact grid, the
// Figure 5 scalability sweep, and Tables 7-20, each with paper-vs-measured
// rows suitable for EXPERIMENTS.md.
//
// Examples:
//
//	coconut-sweep -figure 3                # full 42-cell heat map
//	coconut-sweep -figure 4 -system Fabric # one system's latency column
//	coconut-sweep -figure 5                # scalability, 4..32 nodes
//	coconut-sweep -table 13+14             # Fabric SendPayment rows
//	coconut-sweep -tables                  # all tables
//	coconut-sweep -faults partition-heal   # all systems under a chaos preset
//	coconut-sweep -list                    # enumerate every valid flag value
//
// Beyond the paper's conflict-free grid, the contention workload plane
// measures goodput vs. raw throughput under skewed shared-state access:
//
//	coconut-sweep -workload smallbank -skew zipfian      # SmallBank, all systems
//	coconut-sweep -workload kv -mix ycsb-a -skew hotspot # YCSB-A hotspot
//	coconut-sweep -workload all -skew all                # full contention grid
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/faults"
	"github.com/coconut-bench/coconut/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coconut-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure    = flag.Int("figure", 0, "figure to regenerate (3, 4, or 5)")
		mdPath    = flag.String("md", "", "also write a markdown report to this file")
		table     = flag.String("table", "", "table to regenerate (7+8, 9+10, 11+12, 13+14, 15+16, 17+18, 19+20)")
		allTables = flag.Bool("tables", false, "regenerate every table")
		system    = flag.String("system", "", "restrict to one system")
		scale     = flag.Float64("scale", 0.01, "time scale")
		sendSec   = flag.Float64("send", 300, "sending window in paper seconds")
		reps      = flag.Int("reps", 1, "repetitions (the paper uses 3)")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		arrival   = flag.String("arrival", "uniform", "client arrival schedule: uniform, poisson, or burst[:N]")
		faultsArg = flag.String("faults", "", "chaos preset to run all systems under: "+
			strings.Join(faults.PresetNames(), ", "))
		workloadArg = flag.String("workload", "", "contention workload family to sweep: kv, smallbank, or all")
		mixArg      = flag.String("mix", "", "operation mix for -workload kv (default ycsb-a): "+
			strings.Join(workload.MixNames(), ", ")+", or all")
		skewArg = flag.String("skew", "zipfian", "key distribution for -workload: "+
			strings.Join(workload.DistNames(), ", ")+", or all")
		keysArg    = flag.Int("keys", 0, "shared key-space / account-pool size for -workload (0 = default)")
		list       = flag.Bool("list", false, "enumerate valid benchmarks, arrivals, fault presets, workloads, mixes, and skews")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when the sweep finishes")
	)
	flag.Parse()

	if *list {
		printList()
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
			}
		}()
	}

	if _, err := coconut.ArrivalByName(*arrival); err != nil {
		return err
	}
	opts := experiments.Options{
		Scale:       *scale,
		SendSeconds: *sendSec,
		Repetitions: *reps,
		Arrival:     *arrival,
		Seed:        *seed,
	}

	var md *os.File
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		md = f
	}

	did := false
	switch *figure {
	case 0:
	case 3:
		did = true
		fmt.Println("== Figure 3: best MTPS per system and benchmark ==")
		outcomes, err := experiments.RunFigure3(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFigureReport(md, "Figure 3 — best MTPS heat map", outcomes); err != nil {
				return err
			}
		}
		for _, line := range experiments.ShapeChecks(outcomes) {
			fmt.Println("  " + line)
		}
	case 4:
		did = true
		fmt.Println("== Figure 4: best configurations under emulated latency ==")
		outcomes, err := experiments.RunFigure4(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFigureReport(md, "Figure 4 — emulated latency", outcomes); err != nil {
				return err
			}
		}
	case 5:
		did = true
		fmt.Println("== Figure 5: DoNothing scalability (4/8/16/32 nodes) ==")
		points, err := experiments.RunFigure5(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteScaleReport(md, "Figure 5 — scalability", points); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d (want 3, 4, or 5)", *figure)
	}

	runOne := func(tbl experiments.Table) error {
		fmt.Printf("== Table %s: %s ==\n", tbl.ID, tbl.Title)
		outcomes, err := experiments.RunTable(tbl, opts, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			return experiments.WriteTableReport(md, tbl, outcomes)
		}
		return nil
	}
	if *table != "" {
		did = true
		tbl, ok := experiments.TableByID(*table)
		if !ok {
			return fmt.Errorf("unknown table %q", *table)
		}
		if err := runOne(tbl); err != nil {
			return err
		}
	}
	if *allTables {
		did = true
		for _, tbl := range experiments.Tables {
			if err := runOne(tbl); err != nil {
				return err
			}
		}
	}

	if *faultsArg != "" {
		did = true
		fmt.Printf("== Fault scenario: %s (all systems, DoNothing, RL=200) ==\n", *faultsArg)
		outcomes, err := experiments.RunFaultScenario(*faultsArg, opts, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFaultReport(md, "Fault scenario — "+*faultsArg, outcomes); err != nil {
				return err
			}
		}
	}

	if *workloadArg != "" {
		did = true
		mixes, err := contentionMixes(*workloadArg, *mixArg)
		if err != nil {
			return err
		}
		skews := []string{*skewArg}
		if *skewArg == "all" {
			skews = []string{"partitioned", "sequential", "zipfian", "hotspot"}
		}
		fmt.Printf("== Contention sweep: %s x %s (RL=200) ==\n",
			strings.Join(mixes, "+"), strings.Join(skews, "+"))
		outcomes, err := experiments.RunContentionSweep(mixes, skews, *keysArg, opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteContentionReport(md, "Contention sweep", outcomes); err != nil {
				return err
			}
		}
	}

	if !did {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -figure, -table, -tables, -faults, -workload, or -list")
	}
	return nil
}

// contentionMixes resolves the -workload/-mix flag pair into mix names. An
// explicit -mix only applies to the kv family; combining it with any other
// family is an error rather than a silently ignored flag.
func contentionMixes(family, mix string) ([]string, error) {
	switch family {
	case "kv":
		switch mix {
		case "":
			return []string{"ycsb-a"}, nil
		case "all":
			return []string{"write", "ycsb-a", "ycsb-b", "ycsb-c"}, nil
		default:
			if _, err := workload.MixByName(mix); err != nil {
				return nil, err
			}
			return []string{mix}, nil
		}
	case "smallbank":
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload smallbank (the family fixes its own mix)", mix)
		}
		return []string{"smallbank"}, nil
	case "all":
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload all (pass -workload kv -mix %s instead)", mix, mix)
		}
		return []string{"write", "ycsb-a", "smallbank"}, nil
	default:
		// Accept a mix name directly (e.g. -workload ycsb-b) for brevity.
		if mix != "" {
			return nil, fmt.Errorf("-mix %q conflicts with -workload %q", mix, family)
		}
		if _, err := workload.MixByName(family); err != nil {
			return nil, fmt.Errorf("unknown workload family %q (want kv, smallbank, all, or a mix name)", family)
		}
		return []string{family}, nil
	}
}

// printList enumerates every flag value that is otherwise only
// discoverable by reading source.
func printList() {
	fmt.Println("benchmarks (-figure/-table cells):")
	for _, b := range coconut.AllBenchmarks {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("tables (-table):")
	for _, tbl := range experiments.Tables {
		fmt.Printf("  %-6s %s\n", tbl.ID, tbl.Title)
	}
	fmt.Println("figures (-figure): 3 (best-MTPS grid), 4 (emulated latency), 5 (scalability)")
	fmt.Println("arrival schedules (-arrival):")
	fmt.Println("  uniform, poisson, burst[:N]")
	fmt.Println("fault presets (-faults):")
	for _, p := range faults.PresetNames() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("workload families (-workload): kv, smallbank, all")
	fmt.Println("operation mixes (-mix):")
	for _, m := range workload.MixNames() {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("key distributions (-skew):")
	for _, d := range workload.DistNames() {
		fmt.Printf("  %s\n", d)
	}
	fmt.Println("systems (-system):")
	for _, s := range experiments.AllSystems {
		fmt.Printf("  %s\n", s)
	}
}
