// Command coconut-sweep regenerates the paper's figures and tables: the
// Figure 3 best-MTPS heat map, the Figure 4 latency-impact grid, the
// Figure 5 scalability sweep, and Tables 7-20, each with paper-vs-measured
// rows suitable for EXPERIMENTS.md.
//
// Examples:
//
//	coconut-sweep -figure 3                # full 42-cell heat map
//	coconut-sweep -figure 4 -system Fabric # one system's latency column
//	coconut-sweep -figure 5                # scalability, 4..32 nodes
//	coconut-sweep -table 13+14             # Fabric SendPayment rows
//	coconut-sweep -tables                  # all tables
//	coconut-sweep -faults partition-heal   # all systems under a chaos preset
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/faults"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coconut-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure    = flag.Int("figure", 0, "figure to regenerate (3, 4, or 5)")
		mdPath    = flag.String("md", "", "also write a markdown report to this file")
		table     = flag.String("table", "", "table to regenerate (7+8, 9+10, 11+12, 13+14, 15+16, 17+18, 19+20)")
		allTables = flag.Bool("tables", false, "regenerate every table")
		system    = flag.String("system", "", "restrict to one system")
		scale     = flag.Float64("scale", 0.01, "time scale")
		sendSec   = flag.Float64("send", 300, "sending window in paper seconds")
		reps      = flag.Int("reps", 1, "repetitions (the paper uses 3)")
		seed      = flag.Int64("seed", 42, "deterministic seed")
		arrival   = flag.String("arrival", "uniform", "client arrival schedule: uniform, poisson, or burst[:N]")
		faultsArg = flag.String("faults", "", "chaos preset to run all systems under: "+
			strings.Join(faults.PresetNames(), ", "))
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when the sweep finishes")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "coconut-sweep: memprofile:", err)
			}
		}()
	}

	if _, err := coconut.ArrivalByName(*arrival); err != nil {
		return err
	}
	opts := experiments.Options{
		Scale:       *scale,
		SendSeconds: *sendSec,
		Repetitions: *reps,
		Arrival:     *arrival,
		Seed:        *seed,
	}

	var md *os.File
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		md = f
	}

	did := false
	switch *figure {
	case 0:
	case 3:
		did = true
		fmt.Println("== Figure 3: best MTPS per system and benchmark ==")
		outcomes, err := experiments.RunFigure3(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFigureReport(md, "Figure 3 — best MTPS heat map", outcomes); err != nil {
				return err
			}
		}
		for _, line := range experiments.ShapeChecks(outcomes) {
			fmt.Println("  " + line)
		}
	case 4:
		did = true
		fmt.Println("== Figure 4: best configurations under emulated latency ==")
		outcomes, err := experiments.RunFigure4(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFigureReport(md, "Figure 4 — emulated latency", outcomes); err != nil {
				return err
			}
		}
	case 5:
		did = true
		fmt.Println("== Figure 5: DoNothing scalability (4/8/16/32 nodes) ==")
		points, err := experiments.RunFigure5(opts, *system, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteScaleReport(md, "Figure 5 — scalability", points); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown figure %d (want 3, 4, or 5)", *figure)
	}

	runOne := func(tbl experiments.Table) error {
		fmt.Printf("== Table %s: %s ==\n", tbl.ID, tbl.Title)
		outcomes, err := experiments.RunTable(tbl, opts, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			return experiments.WriteTableReport(md, tbl, outcomes)
		}
		return nil
	}
	if *table != "" {
		did = true
		tbl, ok := experiments.TableByID(*table)
		if !ok {
			return fmt.Errorf("unknown table %q", *table)
		}
		if err := runOne(tbl); err != nil {
			return err
		}
	}
	if *allTables {
		did = true
		for _, tbl := range experiments.Tables {
			if err := runOne(tbl); err != nil {
				return err
			}
		}
	}

	if *faultsArg != "" {
		did = true
		fmt.Printf("== Fault scenario: %s (all systems, DoNothing, RL=200) ==\n", *faultsArg)
		outcomes, err := experiments.RunFaultScenario(*faultsArg, opts, os.Stdout)
		if err != nil {
			return err
		}
		if md != nil {
			if err := experiments.WriteFaultReport(md, "Fault scenario — "+*faultsArg, outcomes); err != nil {
				return err
			}
		}
	}

	if !did {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -figure, -table, -tables, or -faults")
	}
	return nil
}
