#!/bin/sh
# lint-directio.sh enforces the durability contract's source-level rule:
# production code never writes the filesystem directly. All durable state
# flows through internal/wal (whose Dir abstraction is the one sanctioned
# I/O boundary), so recovery cost stays modeled, crash truncation stays
# simulable, and `-time virtual` runs never block on real disks. A direct
# os.Create/WriteFile/Rename call would silently reintroduce
# unaccounted-for persistence that the crash/replay plane cannot see.
#
# Exemptions:
#   - internal/wal/ itself (the sanctioned boundary; its OSDir backend
#     owns the real syscalls)
#   - _test.go files (tests may stage fixtures on the real filesystem)
#   - resultdb.go (persists benchmark reports, not simulated state)
#   - cmd/ is out of scope: CLIs write their own output files
set -eu
cd "$(dirname "$0")/.."

# os.Create( | os.OpenFile( | os.WriteFile( | os.Mkdir( | os.MkdirAll( |
# os.Remove( | os.RemoveAll( | os.Rename( | os.Truncate( — the mutating
# filesystem API. Reads (os.Open, os.ReadFile) are fine and not matched.
pattern='os\.(Create|OpenFile|WriteFile|Mkdir|MkdirAll|Remove|RemoveAll|Rename|Truncate)\('

hits=$(grep -rEn "$pattern" \
    --include='*.go' \
    --exclude='*_test.go' \
    internal/ examples/ 2>/dev/null |
    grep -v '^internal/wal/' |
    grep -v '^internal/coconut/resultdb\.go:' || true)

if [ -n "$hits" ]; then
    echo "lint-directio: direct filesystem write outside internal/wal:" >&2
    echo "$hits" >&2
    echo "route durable state through internal/wal (or wal.Dir for raw segment I/O)" >&2
    exit 1
fi
echo "lint-directio: ok"
