#!/bin/sh
# lint-telemetry.sh enforces the observability contract's source-level
# rule: instrumented packages never mint their own telemetry. Queue and
# resource gauges live in the internal/coconut registry (GaugeSample
# indices + GaugeNames) and are sampled by the runner's gauge actor;
# traces come from the single trace.Tracer the caller wires through each
# driver's Config.Trace. A package that calls trace.New or builds its own
# coconut.GaugeSeries would create a second telemetry plane: unsampled by
# the runner, invisible to benchjson and the report's queue-growth
# section, and a determinism hazard (a second tracer double-advances the
# counter-sampled wal:append and network-hop span sequences).
#
# Exemptions:
#   - internal/coconut/ (owns the gauge registry and the sampler actor)
#   - internal/trace/ (the tracer's own package)
#   - _test.go files (tests construct tracers and series freely)
#   - cmd/ is out of scope: CLIs are the sanctioned tracer constructors
set -eu
cd "$(dirname "$0")/.."

# trace.New( — minting a second tracer; coconut.GaugeSample{ /
# coconut.GaugeSeries{ — hand-built gauge telemetry bypassing the
# sampler; expvar. — ad-hoc process-global counters outside the registry.
pattern='(trace\.New\(|coconut\.GaugeSeries\{|coconut\.GaugeSample\{|expvar\.)'

scan() {
    grep -rEn "$pattern" \
        --include='*.go' \
        --exclude='*_test.go' \
        "$@" 2>/dev/null |
        grep -v 'internal/trace/' |
        grep -v 'internal/coconut/' || true
}

# Self-test: prove the pattern still catches a known violation before
# trusting a clean scan of the real tree.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM
mkdir -p "$tmp/selftest"
cat > "$tmp/selftest/bad.go" <<'EOF'
package selftest

var badTracer = trace.New(trace.Options{})
var badSeries = coconut.GaugeSeries{}
EOF
if [ "$(scan "$tmp/selftest" | wc -l)" -ne 2 ]; then
    echo "lint-telemetry: self-test failed (pattern missed a known violation)" >&2
    exit 1
fi

hits=$(scan internal/ examples/)

if [ -n "$hits" ]; then
    echo "lint-telemetry: ad-hoc telemetry outside the registry/tracer boundary:" >&2
    echo "$hits" >&2
    echo "gauges go through the internal/coconut registry (sampled by the runner); traces through the injected Config.Trace tracer" >&2
    exit 1
fi
echo "lint-telemetry: ok"
