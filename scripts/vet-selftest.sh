#!/bin/sh
# vet-selftest.sh preserves the self-testing property the retired shell
# lints had: before trusting a clean scan of the real tree, prove each
# coconut-vet analyzer still catches a known violation. The fixture tree
# under internal/vet/testdata/src/ holds at least one deliberate
# violation per analyzer (including the alias-import cases the old grep
# scripts provably missed); running the driver over each fixture must
# exit nonzero and name the analyzer, and a deliberately clean file must
# pass. A silent regression in an analyzer — or in the loader feeding it
# — fails this script, not the next determinism bug.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/coconut-vet" ./cmd/coconut-vet

fail=0
for a in walltime directio telemetry maporder actorspawn parklock globalrand; do
    dir="internal/vet/testdata/src/$a"
    if [ ! -d "$dir" ]; then
        echo "vet-selftest: missing fixture $dir" >&2
        fail=1
        continue
    fi
    out=$("$tmp/coconut-vet" -dir "$dir" -analyzers "$a" 2>&1) && {
        echo "vet-selftest: $a found nothing in its violation fixture:" >&2
        echo "$out" >&2
        fail=1
        continue
    }
    case "$out" in
    *"$a"*) ;;
    *)
        echo "vet-selftest: $a exited nonzero but never named itself:" >&2
        echo "$out" >&2
        fail=1
        ;;
    esac
done

# A clean fixture must pass: the driver's failure signal carries no
# information if it also fires on violation-free code.
mkdir -p "$tmp/clean"
cat > "$tmp/clean/clean.go" <<'EOF'
package clean

func Add(a, b int) int { return a + b }
EOF
if ! "$tmp/coconut-vet" -dir "$tmp/clean" > /dev/null 2>&1; then
    echo "vet-selftest: driver failed on a violation-free fixture" >&2
    fail=1
fi

# A stale suppression must fail the run even with no findings.
mkdir -p "$tmp/stale"
cat > "$tmp/stale/stale.go" <<'EOF'
package stale

//vet:allow walltime nothing here reads the clock
func Clean() {}
EOF
if "$tmp/coconut-vet" -dir "$tmp/stale" > /dev/null 2>&1; then
    echo "vet-selftest: stale //vet:allow did not fail the run" >&2
    fail=1
fi

[ "$fail" -eq 0 ] || exit 1
echo "vet-selftest: ok (7 analyzers caught their fixtures; clean tree passes; stale allow fails)"
