#!/bin/sh
# lint-walltime.sh enforces the determinism contract's source-level rule:
# production code never reads the wall clock or schedules against it
# directly. All time flows through internal/clock (whose Clock interface
# the virtual scheduler implements), so `-time virtual` runs stay
# CPU-bound and bit-deterministic. A direct time.Now/Sleep/After/
# NewTicker/NewTimer call would silently reintroduce wall-clock
# dependence that only shows up as flaky virtual runs much later.
#
# Exemptions:
#   - internal/clock/ itself (the one sanctioned wall-clock boundary;
#     everything else uses clock.Walltime() for wall reads)
#   - _test.go files (tests may pace themselves against real time)
#   - resultdb.go (stamps reports with the actual date, not sim time)
set -eu
cd "$(dirname "$0")/.."

# time.Now( | time.Sleep( | time.After( | time.Tick( | time.NewTicker( |
# time.NewTimer( | time.AfterFunc( — the wall-clock package API. Method
# calls like t.After(u) on time.Time values are fine and not matched.
pattern='time\.(Now|Sleep|After|Tick|NewTicker|NewTimer|AfterFunc)\('

hits=$(grep -rEn "$pattern" \
    --include='*.go' \
    --exclude='*_test.go' \
    internal/ cmd/ examples/ 2>/dev/null |
    grep -v '^internal/clock/' |
    grep -v '^internal/coconut/resultdb\.go:' || true)

if [ -n "$hits" ]; then
    echo "lint-walltime: direct wall-clock use outside internal/clock:" >&2
    echo "$hits" >&2
    echo "route time through the injected clock.Clock (or clock.Walltime for sanctioned wall reads)" >&2
    exit 1
fi
echo "lint-walltime: ok"
