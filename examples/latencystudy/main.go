// Latencystudy: reproduce the paper's §5.8.1 methodology on one system —
// run the same workload on a pristine network and on one with netem-style
// emulated latency (normal distribution, mu 12ms, sigma 2ms on every link)
// and report the throughput drop. The paper finds Fabric loses 33-40% of
// its throughput under this emulation because of the extra orderer
// round trips.
//
// Run with:
//
//	go run ./examples/latencystudy
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/network"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/fabric"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	measure := func(label string, model network.LatencyModel) (float64, float64, error) {
		newDriver := func(clk clock.Clock) systems.Driver {
			var tr *network.Transport
			if model != nil {
				tr = network.NewTransport(clk, model)
			}
			return fabric.New(fabric.Config{
				MaxMessageCount: 50,
				BatchTimeout:    20 * time.Millisecond,
				Transport:       tr,
				Clock:           clk,
			})
		}
		results, err := coconut.Run(coconut.RunConfig{
			SystemName:   systems.NameFabric,
			NewDriver:    newDriver,
			Unit:         []coconut.BenchmarkName{coconut.BenchDoNothing},
			Clients:      4,
			RateLimit:    200,
			SendDuration: 1500 * time.Millisecond,
			ListenGrace:  400 * time.Millisecond,
			Repetitions:  2,
		})
		if err != nil {
			return 0, 0, err
		}
		r := results[0]
		fmt.Printf("%-24s MTPS=%8.2f ±%.2f   MFLS=%6.2fms   received %.0f/%.0f\n",
			label, r.MTPS.Mean, r.MTPS.CI95, r.MFLS.Mean*1000,
			r.Received.Mean, r.Expected.Mean)
		return r.MTPS.Mean, r.MFLS.Mean, nil
	}

	fmt.Println("Fabric DoNothing, with and without emulated network latency")
	fmt.Println("(paper §5.8.1: netem normal distribution, mu=12ms, sigma=2ms)")
	fmt.Println()

	baseTPS, baseFLS, err := measure("LAN (no emulation)", nil)
	if err != nil {
		return err
	}
	// The emulation is scaled like the rest of the simulation (1/100 of
	// the paper's wall-clock), keeping latency/block-time ratios intact.
	latTPS, latFLS, err := measure("netem mu=12ms sigma=2ms", network.NewNormalLatency(
		120*time.Microsecond, 20*time.Microsecond, 7))
	if err != nil {
		return err
	}

	if baseTPS > 0 && baseFLS > 0 {
		fmt.Printf("\nfinalization latency change: %+.1f%%\n", 100*(latFLS-baseFLS)/baseFLS)
		fmt.Printf("throughput change:           %+.1f%%\n", 100*(latTPS-baseTPS)/baseTPS)
		fmt.Println()
		fmt.Println("The latency hit lands on MFLS here: the in-process pipeline keeps")
		fmt.Println("ordering fully pipelined, so MTPS barely moves. The paper's real")
		fmt.Println("Fabric loses 33-40% MTPS through orderer round trips (EXPERIMENTS.md")
		fmt.Println("records this as a known deviation).")
	}
	return nil
}
