// Chaos: compare the seven systems under the partition-heal fault preset.
// A quarter of the network is partitioned away a third of the way into the
// run and healed at two thirds; the windowed measurement plane then shows
// where permissioned systems actually diverge under faults:
//
//   - The hub-based systems (Fabric, Quorum, Sawtooth, Diem, BitShares)
//     stop confirming during the partition — the paper's §4.5 criterion
//     needs every node — then deliver the backlog when the minority
//     catches up, recovering within a window or two.
//   - Corda loses every flow offered during the outage outright: each flow
//     needs every node's signature, so one unreachable node halts all
//     write flows (the flip side of the paper's §6 subset-signing lesson).
//   - Diem's own validator spiking compounds the outage.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/faults"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sched, err := faults.NewPreset(faults.PresetPartitionHeal, 4, 0)
	if err != nil {
		return err
	}
	fmt.Println("partition-heal: minority partitioned at 30% of the run, healed at 60%")
	for _, ev := range sched.Events {
		fmt.Printf("  %s group=%v\n", ev.Kind, ev.Group)
	}
	fmt.Println()

	// The chaos preset is a registered scenario: all seven systems run
	// DoNothing at RL=200 under the schedule, and the engine streams one
	// progress line per system.
	sc, err := experiments.ScenarioByName("faults-" + faults.PresetPartitionHeal)
	if err != nil {
		return err
	}
	// 120 paper-seconds of load at the default 1/100 scale: each system
	// runs 1.2s of simulated time plus its real-time processing costs.
	outcome, err := experiments.Run(context.Background(), sc, experiments.Options{
		SendSeconds: 120,
		Repetitions: 1,
		Seed:        42,
		Progress: func(p experiments.Progress) {
			if p.Result == nil {
				return
			}
			r := p.Result
			fmt.Printf("%-18s MTPS=%8.2f avail=%3.0f%% recovery=%s goodput-recovery=%s recv=%.0f/%.0f\n",
				p.System, r.MTPS.Mean, 100*r.Availability.Mean,
				recovery(r.RecoverySec), recovery(r.GoodputRecoverySec),
				r.Received.Mean, r.Expected.Mean)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n%d systems measured under %s\n", len(outcome.Rows), sc.Faults.Label())
	return nil
}

func recovery(s coconut.Stats) string {
	if s.N == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2fs", s.Mean)
}
