// Chaos: compare the seven systems under the partition-heal fault preset.
// A quarter of the network is partitioned away a third of the way into the
// run and healed at two thirds; the windowed measurement plane then shows
// where permissioned systems actually diverge under faults:
//
//   - The hub-based systems (Fabric, Quorum, Sawtooth, Diem, BitShares)
//     stop confirming during the partition — the paper's §4.5 criterion
//     needs every node — then deliver the backlog when the minority
//     catches up, recovering within a window or two.
//   - Corda loses every flow offered during the outage outright: each flow
//     needs every node's signature, so one unreachable node halts all
//     write flows (the flip side of the paper's §6 subset-signing lesson).
//   - Diem's own validator spiking compounds the outage.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/coconut-bench/coconut/internal/experiments"
	"github.com/coconut-bench/coconut/internal/faults"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sched, err := faults.NewPreset(faults.PresetPartitionHeal, 4, 0)
	if err != nil {
		return err
	}
	fmt.Println("partition-heal: minority partitioned at 30% of the run, healed at 60%")
	for _, ev := range sched.Events {
		fmt.Printf("  %s group=%v\n", ev.Kind, ev.Group)
	}
	fmt.Println()

	// 120 paper-seconds of load at the default 1/100 scale: each system
	// runs 1.2s of simulated time plus its real-time processing costs.
	_, err = experiments.RunFaultScenario(faults.PresetPartitionHeal, experiments.Options{
		SendSeconds: 120,
		Repetitions: 1,
		Seed:        42,
	}, os.Stdout)
	return err
}
