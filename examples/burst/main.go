// Burst: drive the same Quorum network with the same mean load under three
// arrival schedules — the paper's uniform rate limiter, an open-loop
// Poisson process, and square-wave bursts — and compare throughput and the
// latency tail. Mean rate is identical in all three runs; only the arrival
// process changes, so any MTPS or percentile difference is queueing
// behaviour, not offered load.
//
// Run with:
//
//	go run ./examples/burst
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/quorum"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schedules := []coconut.ArrivalSchedule{
		coconut.UniformArrival{},
		coconut.PoissonArrival{},
		coconut.BurstArrival{Size: 25},
	}

	fmt.Printf("%-10s %10s %10s %10s %10s %12s\n",
		"arrival", "MTPS", "MFLS", "P95", "P99", "received")
	for _, sched := range schedules {
		results, err := coconut.Run(coconut.RunConfig{
			SystemName: systems.NameQuorum,
			NewDriver: func(clk clock.Clock) systems.Driver {
				return quorum.New(quorum.Config{BlockPeriod: 20 * time.Millisecond, Clock: clk})
			},
			Unit:         []coconut.BenchmarkName{coconut.BenchDoNothing},
			Clients:      2,
			RateLimit:    200,
			Arrival:      sched,
			ArrivalSeed:  42,
			SendDuration: time.Second,
			ListenGrace:  400 * time.Millisecond,
			Repetitions:  2,
			Params:       map[string]string{"arrival": sched.Name()},
		})
		if err != nil {
			return err
		}
		r := results[0]
		fmt.Printf("%-10s %10.1f %9.1fms %9.1fms %9.1fms %11.0f%%\n",
			sched.Name(), r.MTPS.Mean,
			r.MFLS.Mean*1000, r.MFLSP95.Mean*1000, r.MFLSP99.Mean*1000,
			100*r.Received.Mean/r.Expected.Mean)
	}
	return nil
}
