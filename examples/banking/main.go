// Banking: run the full BankingApp unit (CreateAccount → SendPayment →
// Balance, paper §4.1) against Fabric and Quorum and contrast how their
// architectures handle the overwriting SendPayment transactions:
//
//   - Fabric (execute-order-validate) appends MVCC-conflicting payments to
//     the chain but keeps them out of the world state (§5.4).
//   - Quorum (order-execute) serializes execution after consensus, so
//     conflicting payments simply execute in block order (§5.5).
//
// Run with:
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/fabric"
	"github.com/coconut-bench/coconut/internal/systems/quorum"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	unit := []coconut.BenchmarkName{
		coconut.BenchCreateAccount,
		coconut.BenchSendPayment,
		coconut.BenchBalance,
	}

	type candidate struct {
		name      string
		newDriver func(clk clock.Clock) systems.Driver
	}
	candidates := []candidate{
		{
			name: systems.NameFabric,
			newDriver: func(clk clock.Clock) systems.Driver {
				return fabric.New(fabric.Config{
					MaxMessageCount: 50,
					BatchTimeout:    20 * time.Millisecond,
					Clock:           clk,
				})
			},
		},
		{
			name: systems.NameQuorum,
			newDriver: func(clk clock.Clock) systems.Driver {
				return quorum.New(quorum.Config{BlockPeriod: 20 * time.Millisecond, Clock: clk})
			},
		},
	}

	for _, c := range candidates {
		fmt.Printf("=== %s: BankingApp unit ===\n", c.name)
		results, err := coconut.Run(coconut.RunConfig{
			SystemName:   c.name,
			NewDriver:    c.newDriver,
			Unit:         unit,
			Clients:      2,
			RateLimit:    100,
			SendDuration: time.Second,
			ListenGrace:  400 * time.Millisecond,
			Repetitions:  1,
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("  %-26s MTPS=%8.2f  MFLS=%6.1fms  received %4.0f/%4.0f\n",
				r.Benchmark, r.MTPS.Mean, r.MFLS.Mean*1000,
				r.Received.Mean, r.Expected.Mean)
		}
	}

	fmt.Println()
	fmt.Println("Note how both systems confirm the conflicting SendPayment transactions")
	fmt.Println("end to end: Fabric appends them with a failed validation verdict, while")
	fmt.Println("Quorum executes them sequentially after ordering. Compare with BitShares")
	fmt.Println("(examples are in the benchmark harness), which excludes interacting")
	fmt.Println("transactions from blocks entirely and loses them.")
	return nil
}
