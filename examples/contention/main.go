// Contention: compare the seven systems where the paper's grid cannot —
// under conflicting access to shared state. The paper partitions key
// spaces per thread so "no duplicates occur during writing" (§4.1); this
// example instead drives a Zipfian-skewed SmallBank transaction family and
// a YCSB-A read/write mix over one shared key space, and separates goodput
// (valid-committed TPS) from raw committed throughput:
//
//   - Fabric appends MVCC-failed transactions to the chain (§5.4), so its
//     raw MTPS holds up while goodput collapses with skew — the
//     execute-order-validate failure mode of Thakkar et al.
//     (arXiv:1805.11390).
//   - Quorum and Diem order first and execute after consensus: conflicts
//     surface as semantic aborts (insufficient funds) on hot accounts,
//     committed in blocks but changing nothing.
//   - BitShares excludes interacting transactions from the forming block
//     (§5.3): conflicts never commit at all, so goodput equals raw MTPS
//     while the conflict column counts the sheds.
//   - Sawtooth discards a whole batch when one member fails (§5.6).
//   - Corda's notary rejects flows that race on the same account states —
//     double spends — and every rejection is a flow lost end to end.
//
// The run is seeded: identical seeds replay identical operation sequences.
//
// Run with:
//
//	go run ./examples/contention
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/coconut-bench/coconut/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := experiments.Options{
		SendSeconds: 90,
		Repetitions: 1,
		Seed:        42,
		Progress: func(p experiments.Progress) {
			if p.Result == nil {
				return
			}
			r := p.Result
			fmt.Printf("%-44s MTPS=%8.2f goodput=%8.2f abort=%5.1f%%  %s\n",
				p.Cell, r.MTPS.Mean, r.Goodput.Mean, 100*r.AbortRate.Mean,
				experiments.ConflictSummary(*r, 3))
		},
	}
	sweep := func(sc experiments.Scenario) error {
		_, err := experiments.Run(context.Background(), sc, opts)
		return err
	}

	fmt.Println("SmallBank over a shared account pool, Zipfian-skewed (hot accounts):")
	if err := sweep(experiments.NewContentionScenario(
		[]string{"smallbank"}, []string{"zipfian"}, 0)); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("YCSB-A (50/50 read-write) over a shared key space, hotspot-skewed:")
	if err := sweep(experiments.NewContentionScenario(
		[]string{"ycsb-a"}, []string{"hotspot"}, 0)); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("Control: the same SmallBank family with the paper's partitioned scheme")
	fmt.Println("(disjoint per-thread account slices) stays conflict-free:")
	control := experiments.NewContentionScenario([]string{"smallbank"}, []string{"partitioned"}, 0)
	control.Systems = []string{"Fabric"}
	if err := sweep(control); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("goodput = valid-committed TPS; abort% = invalid commits / received;")
	fmt.Println("the conflicts column counts payloads per abort reason (client-observed")
	fmt.Println("aborts plus driver-side sheds that never produce a client event).")
	return nil
}
