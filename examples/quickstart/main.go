// Quickstart: provision a simulated Hyperledger Fabric network, drive it
// with the COCONUT DoNothing workload, and print the end-to-end metrics —
// the smallest possible use of the library's public surface.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/fabric"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A fresh 4-peer / 3-orderer Fabric network per repetition, with blocks
	// cut at 50 transactions or 20ms (a scaled-down MaxMessageCount=500 /
	// BatchTimeout=2s from the paper's Table 5).
	newDriver := func(clk clock.Clock) systems.Driver {
		return fabric.New(fabric.Config{
			MaxMessageCount: 50,
			BatchTimeout:    20 * time.Millisecond,
			Clock:           clk,
		})
	}

	// Four COCONUT clients, each sending 100 payloads/second for one
	// second, then listening for late confirmations — the paper's §4.3
	// layout, scaled down.
	results, err := coconut.Run(coconut.RunConfig{
		SystemName:   "Fabric",
		NewDriver:    newDriver,
		Unit:         []coconut.BenchmarkName{coconut.BenchDoNothing},
		Clients:      4,
		RateLimit:    100,
		SendDuration: time.Second,
		ListenGrace:  300 * time.Millisecond,
		Repetitions:  3,
	})
	if err != nil {
		return err
	}

	for _, r := range results {
		fmt.Println(r)
		fmt.Printf("  MTPS %.2f ±%.2f (95%% CI over %d repetitions)\n",
			r.MTPS.Mean, r.MTPS.CI95, r.MTPS.N)
		fmt.Printf("  MFLS %.1fms, received %d%% of submitted payloads\n",
			r.MFLS.Mean*1000, int(100*r.Received.Mean/r.Expected.Mean))
	}
	return nil
}
