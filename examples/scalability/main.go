// Scalability: reproduce the paper's §5.8.2 methodology — the DoNothing
// benchmark at growing network sizes — for two systems with opposite
// behaviour:
//
//   - Corda OS decays steeply: every flow is signed serially by all n-1
//     counterparties, so adding nodes stretches every transaction.
//   - BitShares' DPoS stays flat: the witness schedule adds no quorum
//     communication, only schedule length (§5.8.2's one exception).
//
// Run with:
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coconut-bench/coconut/internal/clock"
	"github.com/coconut-bench/coconut/internal/coconut"
	"github.com/coconut-bench/coconut/internal/systems"
	"github.com/coconut-bench/coconut/internal/systems/bitshares"
	"github.com/coconut-bench/coconut/internal/systems/corda"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sizes := []int{4, 8, 16}

	measure := func(system string, nodes int) (float64, error) {
		newDriver := func(clk clock.Clock) systems.Driver {
			switch system {
			case systems.NameCordaOS:
				return corda.NewOS(corda.Config{
					Nodes:          nodes,
					SignProcessing: 3 * time.Millisecond, // serial per counterparty
					ScanCost:       time.Microsecond,
					FlowTimeout:    10 * time.Second,
					Clock:          clk,
				})
			default:
				return bitshares.New(bitshares.Config{
					Nodes:         nodes,
					BlockInterval: 20 * time.Millisecond,
					Clock:         clk,
				})
			}
		}
		results, err := coconut.Run(coconut.RunConfig{
			SystemName:   system,
			NewDriver:    newDriver,
			Unit:         []coconut.BenchmarkName{coconut.BenchDoNothing},
			Clients:      4,
			RateLimit:    150,
			SendDuration: 1200 * time.Millisecond,
			ListenGrace:  500 * time.Millisecond,
			Repetitions:  1,
		})
		if err != nil {
			return 0, err
		}
		return results[0].MTPS.Mean, nil
	}

	fmt.Println("DoNothing MTPS vs network size (paper Figure 5 methodology)")
	fmt.Println()
	fmt.Printf("%-12s", "nodes")
	for _, n := range sizes {
		fmt.Printf("%10d", n)
	}
	fmt.Println()

	for _, system := range []string{systems.NameCordaOS, systems.NameBitShares} {
		fmt.Printf("%-12s", system)
		for _, n := range sizes {
			tps, err := measure(system, n)
			if err != nil {
				return err
			}
			fmt.Printf("%10.1f", tps)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Expected shape: Corda OS decays steeply with size; BitShares stays flat.")
	return nil
}
