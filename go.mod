module github.com/coconut-bench/coconut

go 1.22
